//! The task model: jobs, task nodes and scope bookkeeping.
//!
//! A **job** is the user-provided work description; a **task node** is the
//! scheduler-internal object that travels through the work-stealing deques,
//! carries the thread requirement `r` (Section 3 of the paper), and — once a
//! team has been built for it — the team descriptor and the completion
//! countdown shared by all executing team members.
//!
//! # Task memory management
//!
//! Spawning is the scheduler's hottest path, so task nodes avoid the global
//! allocator twice over (DESIGN.md §8):
//!
//! * **Inline job storage** — closures small enough for the node's fixed
//!   payload area are moved *into* the node (`JobSlot::Inline`); only
//!   oversized closures and type-erased `Box<dyn Job>` submissions pay for
//!   a separate heap allocation (`JobSlot::Boxed`).
//! * **Node recycling** — nodes spawned from worker threads come from the
//!   worker's slab arena ([`teamsteal_util::slab::Slab`]) and are returned
//!   to it by whichever thread finishes the task last; nodes submitted from
//!   outside the pool (no arena available) fall back to `Box`.  The `home`
//!   pointer records which of the two frees the node.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use teamsteal_util::slab::{Recycle, Slab};

use crate::cancel::CancelCell;
use crate::context::TaskContext;
use crate::team::TeamBarrier;

/// A unit of work understood by the scheduler.
///
/// Jobs with [`requirement`](Job::requirement)` == 1` behave exactly like
/// classic work-stealing tasks: `run` is invoked once, by one worker.  Jobs
/// with a larger requirement are executed *cooperatively*: once a team of the
/// required size has been built, **every** team member invokes `run` on the
/// same job object concurrently, each with a different
/// [`TaskContext::local_id`].  The job body coordinates its members through
/// the context (team barrier, local ids) exactly like an SPMD kernel.
pub trait Job: Send + Sync {
    /// Number of threads this job requires (the paper's `r`).  Must be at
    /// least 1 and at most the number of scheduler threads.
    fn requirement(&self) -> usize {
        1
    }

    /// Smallest team this job can run on (**moldable** jobs, DESIGN.md §15).
    /// The scheduler picks an effective team size in
    /// `requirement_min() ..= requirement()` from current load; the default
    /// (`== requirement()`) keeps the job rigid, the paper's model.  Must be
    /// at least 1 and at most [`requirement`](Job::requirement).
    fn requirement_min(&self) -> usize {
        self.requirement()
    }

    /// Executes the job.  For team jobs this is called once per team member,
    /// concurrently.
    fn run(&self, ctx: &TaskContext<'_>);
}

/// Adapter: a sequential (`r = 1`) job from a closure that is executed
/// exactly once.
pub(crate) struct OnceJob<F: FnOnce(&TaskContext<'_>) + Send> {
    /// The closure, taken exactly once by the single executing thread.
    f: UnsafeCell<Option<F>>,
}

// SAFETY: the closure is only ever taken by the single worker that executes
// this r = 1 task; the scheduler never shares an `OnceJob` between threads
// concurrently (see `TaskNode::participants`).
unsafe impl<F: FnOnce(&TaskContext<'_>) + Send> Sync for OnceJob<F> {}

impl<F: FnOnce(&TaskContext<'_>) + Send> OnceJob<F> {
    pub(crate) fn new(f: F) -> Self {
        OnceJob {
            f: UnsafeCell::new(Some(f)),
        }
    }
}

impl<F: FnOnce(&TaskContext<'_>) + Send> Job for OnceJob<F> {
    fn requirement(&self) -> usize {
        1
    }

    fn run(&self, ctx: &TaskContext<'_>) {
        // SAFETY: r = 1 tasks are executed by exactly one thread, exactly
        // once; no other reference to the cell can exist at this point.
        let f = unsafe { (*self.f.get()).take() };
        if let Some(f) = f {
            f(ctx);
        }
    }
}

/// Adapter: a team job (`r >= 1`) from a shared closure executed by every
/// team member.
pub(crate) struct TeamJob<F: Fn(&TaskContext<'_>) + Send + Sync> {
    requirement: usize,
    requirement_min: usize,
    f: F,
}

impl<F: Fn(&TaskContext<'_>) + Send + Sync> TeamJob<F> {
    pub(crate) fn new(requirement: usize, f: F) -> Self {
        TeamJob {
            requirement,
            requirement_min: requirement,
            f,
        }
    }

    /// A moldable team job: any team size in `min ..= max` can run it.
    pub(crate) fn moldable(min: usize, max: usize, f: F) -> Self {
        TeamJob {
            requirement: max,
            requirement_min: min,
            f,
        }
    }
}

impl<F: Fn(&TaskContext<'_>) + Send + Sync> Job for TeamJob<F> {
    fn requirement(&self) -> usize {
        self.requirement
    }

    fn requirement_min(&self) -> usize {
        self.requirement_min
    }

    fn run(&self, ctx: &TaskContext<'_>) {
        (self.f)(ctx);
    }
}

// ---------------------------------------------------------------------------
// Job storage: inline payload with boxed fallback
// ---------------------------------------------------------------------------

/// Words of inline closure storage in every task node.  Sized so the typical
/// spawn captures (a couple of `Arc`s, slice pointers, lengths, a config
/// reference) fit; larger jobs fall back to a box.
const INLINE_JOB_WORDS: usize = 10;
const INLINE_JOB_BYTES: usize = INLINE_JOB_WORDS * std::mem::size_of::<usize>();

/// Calls `J::run` on the job stored at `payload`.
///
/// # Safety
///
/// `payload` must point to a live, initialized `J`.
unsafe fn run_job_thunk<J: Job>(payload: *const u8, ctx: &TaskContext<'_>) {
    // SAFETY: caller contract.
    unsafe { (*payload.cast::<J>()).run(ctx) }
}

/// Drops the job stored at `payload` in place.
///
/// # Safety
///
/// `payload` must point to a live, initialized `J`; it is dead afterwards.
unsafe fn drop_job_thunk<J: Job>(payload: *mut u8) {
    // SAFETY: caller contract.
    unsafe { std::ptr::drop_in_place(payload.cast::<J>()) }
}

/// A type-erased job stored inline in the node's payload area: the closure's
/// bytes plus manual run/drop vtable entries.
pub(crate) struct InlineJob {
    run_fn: unsafe fn(*const u8, &TaskContext<'_>),
    drop_fn: unsafe fn(*mut u8),
    payload: [MaybeUninit<usize>; INLINE_JOB_WORDS],
}

impl InlineJob {
    #[inline]
    fn run(&self, ctx: &TaskContext<'_>) {
        // SAFETY: `payload` holds the live job written in `JobSlot::new`;
        // it is dropped only by `InlineJob::drop`.
        unsafe { (self.run_fn)(self.payload.as_ptr().cast::<u8>(), ctx) }
    }
}

impl Drop for InlineJob {
    fn drop(&mut self) {
        // SAFETY: the payload was initialized in `JobSlot::new` and is
        // dropped exactly once, here.
        unsafe { (self.drop_fn)(self.payload.as_mut_ptr().cast::<u8>()) }
    }
}

/// The job of one task node: stored inline when it fits, boxed otherwise.
pub(crate) enum JobSlot {
    /// Small job moved into the node's payload area — no heap allocation.
    Inline(InlineJob),
    /// Oversized or pre-boxed (`spawn_job`) job.
    Boxed(Box<dyn Job>),
}

impl JobSlot {
    /// Packs a concrete job, inline when it fits the payload area.
    pub(crate) fn new<J: Job + 'static>(job: J) -> JobSlot {
        if std::mem::size_of::<J>() <= INLINE_JOB_BYTES
            && std::mem::align_of::<J>() <= std::mem::align_of::<usize>()
        {
            let mut payload = [MaybeUninit::<usize>::uninit(); INLINE_JOB_WORDS];
            // SAFETY: the size/alignment checks above make the payload area
            // a valid home for `J`; the value is moved in exactly once.
            unsafe { payload.as_mut_ptr().cast::<J>().write(job) };
            JobSlot::Inline(InlineJob {
                run_fn: run_job_thunk::<J>,
                drop_fn: drop_job_thunk::<J>,
                payload,
            })
        } else {
            JobSlot::Boxed(Box::new(job))
        }
    }

    /// Executes the job (once per team member for team jobs).
    #[inline]
    pub(crate) fn run(&self, ctx: &TaskContext<'_>) {
        match self {
            JobSlot::Inline(inline) => inline.run(ctx),
            JobSlot::Boxed(job) => job.run(ctx),
        }
    }

    /// `true` when the job lives in the node's payload area.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self, JobSlot::Inline(_))
    }
}

/// Completion bookkeeping for one `Scheduler::scope` invocation.
///
/// Every spawned task increments `pending`; the last team member to finish a
/// task decrements it.  The scope call blocks until the counter returns to
/// zero, which doubles as the termination detection of the scheduler run
/// (see DESIGN.md §3 for why this replaces the paper's unspecified idle
/// registration protocol).
pub struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// First panic payload raised by a task of this scope, if any.  It is
    /// re-thrown by `Scheduler::scope` after all tasks have drained, so a
    /// panicking task aborts the scope instead of wedging the scheduler.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Total panics recorded over the scope's lifetime.  Only the *first*
    /// payload is kept for re-throwing; this counter makes the silently
    /// dropped rest diagnosable (surfaced through `ServiceReport`).
    panics_observed: AtomicUsize,
}

impl ScopeState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
            panics_observed: AtomicUsize::new(0),
        })
    }

    /// Records the payload of a panicking task (first one wins; every call
    /// is counted in [`panics_observed`](Self::panics_observed)).
    pub(crate) fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        self.panics_observed.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Total panics recorded over the scope's lifetime, including those
    /// whose payloads were dropped because an earlier panic already
    /// occupied the re-throw slot.
    pub(crate) fn panics_observed(&self) -> u64 {
        self.panics_observed.load(Ordering::Relaxed) as u64
    }

    /// Takes the recorded panic payload, if any.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("scope panic slot poisoned").take()
    }

    /// Registers one more outstanding task.
    ///
    /// Relaxed suffices (DESIGN.md §9): every increment is sequenced before
    /// the matching decrement on the spawning thread (a task is pushed only
    /// after it is counted, and executed only after it is pushed), so the
    /// counter's modification order can never expose a transient zero while
    /// work is outstanding; the release/acquire pair that `wait` needs lives
    /// entirely in [`task_finished`](Self::task_finished) and
    /// [`wait`](Self::wait).
    pub(crate) fn task_spawned(&self) {
        self.pending.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one task as fully finished (all team members done).  The
    /// release half of the AcqRel pairs with the acquire load in `wait`, so
    /// the scope caller observes all task side effects.
    pub(crate) fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().expect("scope lock poisoned");
            self.cv.notify_all();
        }
    }

    /// Number of not-yet-finished tasks.
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Blocks until every task spawned in this scope has finished.
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().expect("scope lock poisoned");
        while self.pending.load(Ordering::Acquire) != 0 {
            let (g, _timeout) = self
                .cv
                .wait_timeout(guard, std::time::Duration::from_millis(5))
                .expect("scope lock poisoned");
            guard = g;
        }
    }
}

/// The scheduler-internal representation of one spawned task.
///
/// Nodes spawned on worker threads live in the spawning worker's slab arena
/// and are recycled there by the last finishing participant; externally
/// submitted nodes are boxed.  Either way the node travels through the
/// deques as a raw pointer and is freed exactly once, by
/// `TaskNode::release`.
pub struct TaskNode {
    /// Intrusive link used by the home slab while the node is dead.  Never
    /// touched while the node is alive.
    free_next: AtomicPtr<TaskNode>,
    /// The arena this node recycles into; null for box-allocated nodes.
    /// Points into the scheduler's shared worker state, which outlives every
    /// node (workers are joined and queues drained before it drops).
    home: *const Slab<TaskNode>,
    /// The user job.
    pub(crate) job: JobSlot,
    /// Thread requirement `r` the scheduler honours for this task.  For
    /// moldable tasks this starts at the spawn-time ceiling (`r_max`) and is
    /// rewritten — only ever by the worker that currently *owns* the node,
    /// before (re-)pushing it — to the effective size chosen from current
    /// load (DESIGN.md §15).  The deque/injector handoff publishes the write.
    pub(crate) requirement: usize,
    /// Smallest team this task accepts (`requirement_min == requirement` for
    /// rigid tasks).  Immutable after allocation.
    pub(crate) requirement_min: usize,
    /// Scope this task belongs to (for completion counting).
    pub(crate) scope: Arc<ScopeState>,
    /// Team descriptor, written by the coordinator *before* the task is
    /// published and read by team members *after* they observe the
    /// publication (the publication seqlock provides the ordering).
    pub(crate) team_base: UnsafeCell<usize>,
    pub(crate) team_size: UnsafeCell<usize>,
    /// Barrier shared by the team for this task, sized at publication time.
    pub(crate) barrier: UnsafeCell<Option<Arc<TeamBarrier>>>,
    /// Team members that have not yet finished running this task.  The last
    /// one to decrement frees the node and notifies the scope.
    pub(crate) participants: AtomicU32,
    /// Claim-to-run arbiter for cancellable tasks (DESIGN.md §17), shared
    /// with the submitter's cancel token.  `None` (the default for every
    /// internal spawn path) keeps the hot paths free of cancellation
    /// checks.  Written only while the submitter exclusively owns the node
    /// (between allocation and injection); the injector handoff publishes
    /// it.
    pub(crate) cancel: Option<Arc<CancelCell>>,
    /// Absolute deadline after which the task is dropped without running
    /// (DESIGN.md §17).  Plain data: checked only by the worker that
    /// exclusively owns the node at pop/claim time, so no atomicity is
    /// needed.  `None` for every internal spawn path.
    pub(crate) deadline: Option<std::time::Instant>,
}

// SAFETY: the UnsafeCell fields are written only by the coordinating worker
// before publication and read only after the publication is observed through
// an acquire load; `participants` and `job` are themselves thread-safe, and
// `home`/`free_next` are only used by the release/recycle protocol.
unsafe impl Send for TaskNode {}
unsafe impl Sync for TaskNode {}

// SAFETY: `free_next` is a dedicated field inside the node, accessed through
// a raw pointer without forming references to the rest of the (dead) node.
unsafe impl Recycle for TaskNode {
    unsafe fn free_link(ptr: *mut Self) -> *mut AtomicPtr<Self> {
        // SAFETY: `addr_of_mut!` projects the field without dereferencing.
        unsafe { std::ptr::addr_of_mut!((*ptr).free_next) }
    }
}

impl TaskNode {
    /// Builds a node value.  `home` is the slab the node recycles into
    /// (null ⇒ the node is boxed and freed through `Box::from_raw`).
    pub(crate) fn new_in(
        job: JobSlot,
        requirement: usize,
        requirement_min: usize,
        scope: Arc<ScopeState>,
        home: *const Slab<TaskNode>,
    ) -> Self {
        debug_assert!(1 <= requirement_min && requirement_min <= requirement);
        TaskNode {
            free_next: AtomicPtr::new(std::ptr::null_mut()),
            home,
            job,
            requirement,
            requirement_min,
            scope,
            team_base: UnsafeCell::new(0),
            team_size: UnsafeCell::new(1),
            barrier: UnsafeCell::new(None),
            participants: AtomicU32::new(1),
            cancel: None,
            deadline: None,
        }
    }

    /// Allocates a boxed node (used for root tasks submitted from outside
    /// the worker pool, where no arena is available) and returns the raw
    /// pointer that travels through the deques.  The scope's pending counter
    /// is incremented here.
    pub(crate) fn allocate_boxed(
        job: JobSlot,
        requirement: usize,
        requirement_min: usize,
        scope: Arc<ScopeState>,
    ) -> *mut TaskNode {
        scope.task_spawned();
        Box::into_raw(Box::new(TaskNode::new_in(
            job,
            requirement,
            requirement_min,
            scope,
            std::ptr::null(),
        )))
    }

    /// Frees a node: recycles it into its home arena, or drops the box.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`TaskNode::allocate_boxed`] or a slab `alloc`
    /// that recorded the slab in `home`, the caller must be the last holder
    /// of the node, and the node must not be touched afterwards.
    pub(crate) unsafe fn release(ptr: *mut TaskNode) {
        // SAFETY: the node is still alive here; reading `home` is fine.
        let home = unsafe { (*ptr).home };
        if home.is_null() {
            // SAFETY: allocated by `allocate_boxed`.
            drop(unsafe { Box::from_raw(ptr) });
        } else {
            // SAFETY: drop the contents in place, then hand the dead slot
            // back to its arena; the arena outlives all nodes (see `home`).
            unsafe {
                std::ptr::drop_in_place(ptr);
                (*home).free(ptr);
            }
        }
    }
}

/// A word-sized handle to a [`TaskNode`] as stored in the work-stealing
/// deques and the injection queue.  The handle does not own the node;
/// ownership is tracked by the execution protocol (a node is freed by the
/// last finishing participant, or by the scheduler when draining queues at
/// shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskPtr(pub(crate) *mut TaskNode);

// SAFETY: TaskPtr is just an address; the pointee is Send + Sync.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn scope_counts_down_to_zero() {
        let scope = ScopeState::new();
        scope.task_spawned();
        scope.task_spawned();
        assert_eq!(scope.pending(), 2);
        scope.task_finished();
        assert_eq!(scope.pending(), 1);
        scope.task_finished();
        assert_eq!(scope.pending(), 0);
        // wait() returns immediately when nothing is pending.
        scope.wait();
    }

    #[test]
    fn scope_wait_blocks_until_finished() {
        let scope = ScopeState::new();
        scope.task_spawned();
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let scope = Arc::clone(&scope);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                scope.wait();
                released.load(Ordering::SeqCst)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        released.store(true, Ordering::SeqCst);
        scope.task_finished();
        assert!(waiter.join().unwrap(), "wait returned before task finished");
    }

    #[test]
    fn record_panic_counts_every_payload_but_keeps_the_first() {
        let scope = ScopeState::new();
        assert_eq!(scope.panics_observed(), 0);
        scope.record_panic(Box::new("first"));
        scope.record_panic(Box::new("second"));
        assert_eq!(scope.panics_observed(), 2);
        let payload = scope.take_panic().expect("first payload kept");
        assert_eq!(*payload.downcast::<&str>().unwrap(), "first");
        assert!(scope.take_panic().is_none(), "later payloads are dropped");
    }

    #[test]
    fn allocate_increments_pending_and_sets_defaults() {
        let scope = ScopeState::new();
        let ptr = TaskNode::allocate_boxed(
            JobSlot::new(TeamJob::new(4, |_ctx: &TaskContext<'_>| {})),
            4,
            2,
            Arc::clone(&scope),
        );
        assert_eq!(scope.pending(), 1);
        // SAFETY: we just allocated it and nothing else references it.
        let node = unsafe { &*ptr };
        assert_eq!(node.requirement, 4);
        assert_eq!(node.requirement_min, 2);
        assert_eq!(node.participants.load(Ordering::Relaxed), 1);
        let node_scope = Arc::clone(&node.scope);
        // SAFETY: sole holder.
        unsafe { TaskNode::release(ptr) };
        node_scope.task_finished();
        assert_eq!(scope.pending(), 0);
    }

    #[test]
    fn moldable_team_job_reports_its_range() {
        let j = TeamJob::moldable(2, 6, |_ctx: &TaskContext<'_>| {});
        assert_eq!(j.requirement(), 6);
        assert_eq!(j.requirement_min(), 2);
        // Rigid jobs default the floor to the ceiling.
        let r = TeamJob::new(4, |_ctx: &TaskContext<'_>| {});
        assert_eq!(r.requirement_min(), 4);
    }

    #[test]
    fn small_jobs_store_inline_large_jobs_box() {
        let small = JobSlot::new(TeamJob::new(2, |_ctx: &TaskContext<'_>| {}));
        assert!(small.is_inline(), "an empty closure fits the payload area");
        let big_payload = [0u64; 64];
        let big = JobSlot::new(TeamJob::new(2, move |_ctx: &TaskContext<'_>| {
            std::hint::black_box(&big_payload);
        }));
        assert!(!big.is_inline(), "a 512-byte capture must fall back to Box");
    }

    #[test]
    fn inline_jobs_drop_their_captures() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let token = Token;
        let slot = JobSlot::new(OnceJob::new(move |_ctx: &TaskContext<'_>| {
            let _keep = &token;
        }));
        assert!(slot.is_inline());
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        drop(slot);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "unexecuted inline job drops its capture");
    }
}
