//! Scheduler configuration and tunable parameters.
//!
//! Section 4 of the paper lists the tunables of the prototype: backoff
//! intervals, the number of tasks to steal, and (for the evaluation) whether
//! stealing is deterministic or randomized.  [`SchedulerConfig`] collects
//! them together with the machine topology so benchmarks and ablations can
//! sweep them.

use std::time::Duration;

use teamsteal_topology::{StealPolicy, Topology};

/// How many tasks a thief transfers per successful steal (Section 4,
/// "Number of tasks to steal").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealAmount {
    /// Steal `2^ℓ` tasks where `ℓ` is the level of the partner the thief
    /// reached — the paper's default ("if we reached the ℓth partner it is
    /// likely that all threads in the 2^ℓ block around it are running out of
    /// tasks, so steal enough for all of them").
    #[default]
    TwoToLevel,
    /// Steal half of the victim's queue (the classic balancing rule of
    /// Algorithm 3).
    HalfOfVictim,
    /// Steal a single task per attempt.
    One,
}

impl StealAmount {
    /// Number of tasks to transfer for a victim queue of `victim_len` tasks
    /// reached at steal level `level`.  Always at least 1 and never more than
    /// necessary to leave the victim half of its queue.
    pub fn amount(self, victim_len: usize, level: usize) -> usize {
        let half = (victim_len / 2).max(1);
        match self {
            StealAmount::TwoToLevel => half.min(1usize << level.min(20)),
            StealAmount::HalfOfVictim => half,
            StealAmount::One => 1,
        }
    }
}

/// Configuration of a [`Scheduler`](crate::Scheduler).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Number of worker threads (the paper's `p`).
    pub num_threads: usize,
    /// Machine hierarchy.  Defaults to [`Topology::balanced`] over
    /// `num_threads`.
    pub topology: Option<Topology>,
    /// Victim / partner selection policy.
    pub steal_policy: StealPolicy,
    /// Bulk steal size policy.
    pub steal_amount: StealAmount,
    /// Seed for the per-worker PRNGs (randomized policies and tie-breaking).
    pub seed: u64,
    /// Unproductive spin/yield rounds a worker burns before committing to an
    /// eventcount park (DESIGN.md §12).  The prefix keeps short contention
    /// windows — a steal that will succeed on the next attempt, a countdown
    /// about to hit zero — off the parking path entirely; past it the worker
    /// blocks on the OS and is woken in O(µs) by the responsible event.
    pub park_spin_rounds: u32,
    /// Defensive upper bound on one eventcount park.  The parking protocol
    /// does not rely on it (prepare → recheck → commit makes lost wakeups
    /// impossible); it exists so that a *missed-notification bug* degrades
    /// into bounded latency plus a visible `spurious_wakes` count instead of
    /// a deadlock.  Parked workers cost one predicate re-check per backstop
    /// expiry, so even the default keeps an idle scheduler's CPU use
    /// negligible.
    pub park_backstop: Duration,
    /// Maximum worker count per injection-shard **domain** (DESIGN.md §13).
    /// The external injection queue is sharded per domain: the domains are
    /// the groups of the largest hierarchy level whose nominal size is at
    /// most this width, so the default of 8 gives one shard per 8-worker
    /// neighbourhood (and machines with `p ≤ 8` keep a single shard, the
    /// pre-sharding behaviour).  A width ≥ `p` forces a single shard; a
    /// width of 1 gives one shard per worker.
    pub domain_width: usize,
    /// How long a coordinator keeps a completed team *warm* — parked as a
    /// unit, registration word intact — while it looks for a compatible next
    /// task (DESIGN.md §15).  During the window a consecutive task with
    /// `r ≤` team size skips partner visits and registration entirely (one
    /// publication write).  `Duration::ZERO` disables warm reuse: every
    /// completed team disbands at once, the pre-moldable behaviour.  The
    /// window is an upper bound on how long up to `r − 1` workers can sit
    /// parked instead of thieving, so it should stay well under the
    /// coordinator resync backstop.
    pub warm_keepalive: Duration,
    /// Injector-depth threshold for **elastic shrink** (DESIGN.md §15): when
    /// a team finishes a task and the pending external backlog is at least
    /// this many tasks (or more than one task queues up while every worker
    /// outside the team is asleep), the coordinator disbands at that barrier
    /// instead of keeping or reusing the team, releasing members back to the
    /// steal loop.  A backlog of exactly one never triggers a shrink — a
    /// single consecutive task is what the warm pool exists to serve.
    /// `usize::MAX` disables elastic shrink.
    pub elastic_backlog_threshold: usize,
    /// Epoch-participant slots pre-registered for threads *outside* the
    /// worker pool (DESIGN.md §11): every `Scheduler::scope` submitter
    /// borrows one slot with a single CAS around each injector access.  With
    /// more simultaneous submitters than slots, the surplus spin-waits for a
    /// free slot (counted in `external_pin_waits`) — harmless for a handful
    /// of threads, a hard convoy for service front-ends with hundreds of
    /// them.  Size this at least as large as the peak number of threads that
    /// submit concurrently; the default of 32 preserves the pre-service
    /// behaviour.  Values below 1 are clamped to 1.
    pub external_participants: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            topology: None,
            steal_policy: StealPolicy::Deterministic,
            steal_amount: StealAmount::TwoToLevel,
            seed: 0x7465616d_73746561, // "teamstea(l)"
            park_spin_rounds: 16,
            park_backstop: Duration::from_millis(100),
            domain_width: 8,
            warm_keepalive: Duration::from_micros(200),
            elastic_backlog_threshold: 64,
            external_participants: 32,
        }
    }
}

impl SchedulerConfig {
    /// Creates a configuration for `num_threads` workers with all other
    /// parameters at their defaults.
    pub fn with_threads(num_threads: usize) -> Self {
        SchedulerConfig {
            num_threads,
            ..Default::default()
        }
    }

    /// Resolves the topology: the explicit one if provided (its size must
    /// match `num_threads`), otherwise a balanced hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if an explicit topology disagrees with `num_threads` or if
    /// `num_threads` is zero.
    pub fn resolve_topology(&self) -> Topology {
        assert!(self.num_threads > 0, "scheduler needs at least one thread");
        match &self.topology {
            Some(t) => {
                assert_eq!(
                    t.num_threads(),
                    self.num_threads,
                    "topology size must match num_threads"
                );
                t.clone()
            }
            None => Topology::balanced(self.num_threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_available_parallelism() {
        let c = SchedulerConfig::default();
        assert!(c.num_threads >= 1);
        assert_eq!(c.steal_policy, StealPolicy::Deterministic);
        // Warm reuse is on by default but bounded far below the coordinator
        // resync backstop, and elastic shrink has a sane surge threshold.
        assert!(c.warm_keepalive > Duration::ZERO);
        assert!(c.warm_keepalive < Duration::from_millis(100));
        assert!(c.elastic_backlog_threshold > 0);
    }

    #[test]
    fn steal_amount_policies() {
        // Victim with 16 tasks, thief at level 2.
        assert_eq!(StealAmount::TwoToLevel.amount(16, 2), 4);
        assert_eq!(StealAmount::HalfOfVictim.amount(16, 2), 8);
        assert_eq!(StealAmount::One.amount(16, 2), 1);
        // Tiny queues still yield one task.
        assert_eq!(StealAmount::TwoToLevel.amount(1, 3), 1);
        assert_eq!(StealAmount::HalfOfVictim.amount(1, 0), 1);
        // Half-of-victim caps the 2^l rule.
        assert_eq!(StealAmount::TwoToLevel.amount(8, 5), 4);
    }

    #[test]
    fn default_domain_width_keeps_small_machines_single_shard() {
        use teamsteal_topology::Domains;
        let c = SchedulerConfig::with_threads(4);
        let domains = Domains::new(&c.resolve_topology(), c.domain_width);
        assert_eq!(domains.num_domains(), 1);
        // A 32-thread machine shards at the default width of 8.
        let c = SchedulerConfig::with_threads(32);
        let domains = Domains::new(&c.resolve_topology(), c.domain_width);
        assert_eq!(domains.num_domains(), 4);
    }

    #[test]
    fn resolve_topology_balanced_by_default() {
        let c = SchedulerConfig::with_threads(6);
        let t = c.resolve_topology();
        assert_eq!(t.num_threads(), 6);
        assert_eq!(t.level_sizes(), &[1, 2, 3, 6]);
    }

    #[test]
    #[should_panic]
    fn mismatched_topology_is_rejected() {
        let mut c = SchedulerConfig::with_threads(4);
        c.topology = Some(Topology::balanced(8));
        let _ = c.resolve_topology();
    }
}
