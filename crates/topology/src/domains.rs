//! Locality domains: the shard map derived from the thread hierarchy.
//!
//! The scheduler's external injection queue is sharded per *domain* — a
//! contiguous group of workers that plausibly share a cache — so that
//! submissions and idle pops spread over several head/tail cache lines
//! instead of funnelling through one (DESIGN.md §13).  A [`Domains`] view
//! derives that shard map from an existing [`Topology`]:
//!
//! * the **domain level** is the largest hierarchy level whose nominal group
//!   size does not exceed a configurable `domain_width`, so a width of 8 on a
//!   64-thread machine yields eight 8-thread domains, while a width ≥ `p`
//!   degenerates to a single domain (the pre-sharding behaviour);
//! * each **domain** is one group at that level (groups partition `0..p`
//!   exactly once, so every worker belongs to exactly one domain);
//! * each domain carries a **sweep order**: the shard-visit sequence an idle
//!   worker follows, starting at its own domain and adding the sibling
//!   domains of each successively larger enclosing group — i.e. remote
//!   shards are visited in hierarchy-distance order, nearest first.

use crate::Topology;

/// The shard map: how many injection shards exist, which one each worker
/// belongs to, and in which order a worker visits the others.
///
/// Built once per scheduler from the resolved [`Topology`]; all queries are
/// O(1) lookups into precomputed tables.
#[derive(Debug, Clone)]
pub struct Domains {
    /// Number of hardware threads `p` of the underlying topology.
    p: usize,
    /// The hierarchy level the domains were taken from.
    level: usize,
    /// Domain index of each worker (`domain_of[worker]`).
    domain_of: Vec<usize>,
    /// First worker id of each domain, plus a trailing `p` sentinel, so
    /// domain `d` covers `starts[d]..starts[d + 1]`.
    starts: Vec<usize>,
    /// `sweep[d]` — the distance-ordered domain-visit sequence for workers
    /// of domain `d`.  Always a permutation of `0..num_domains()` beginning
    /// with `d` itself.
    sweep: Vec<Vec<usize>>,
}

impl Domains {
    /// Derives the domain map from `topology` with the given width.
    ///
    /// The domain level is the **largest** level whose nominal group size is
    /// ≤ `domain_width` (level 0 has nominal size 1, so every width ≥ 1
    /// admits at least one level; a width of 0 is treated as 1).
    pub fn new(topology: &Topology, domain_width: usize) -> Self {
        let width = domain_width.max(1);
        let p = topology.num_threads();
        let mut level = 0;
        for l in 0..topology.num_queue_levels() {
            if topology.nominal_level_size(l) <= width {
                level = l;
            }
        }

        // The groups at `level` partition 0..p; walk them left to right.
        let mut domain_of = vec![0usize; p];
        let mut starts = Vec::new();
        let mut i = 0;
        while i < p {
            let size = topology.group_size(i, level);
            let d = starts.len();
            starts.push(i);
            for slot in &mut domain_of[i..i + size] {
                *slot = d;
            }
            i += size;
        }
        starts.push(p);
        let domains = starts.len() - 1;

        // Sweep orders: start at the local domain, then add the domains of
        // each successively larger enclosing group (nearest ring first, in
        // index order within a ring).  The top-level group is 0..p, so the
        // sweep always ends up covering every domain exactly once.
        let mut sweep = Vec::with_capacity(domains);
        for d in 0..domains {
            let representative = starts[d];
            let mut order = Vec::with_capacity(domains);
            let mut visited = vec![false; domains];
            order.push(d);
            visited[d] = true;
            for l in level + 1..topology.num_queue_levels() {
                let group = topology.group_range(representative, l);
                for other in 0..domains {
                    if !visited[other]
                        && group.contains(&starts[other])
                        && starts[other + 1] <= group.end
                    {
                        visited[other] = true;
                        order.push(other);
                    }
                }
            }
            debug_assert_eq!(order.len(), domains);
            sweep.push(order);
        }

        Domains {
            p,
            level,
            domain_of,
            starts,
            sweep,
        }
    }

    /// Number of hardware threads of the underlying topology.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.p
    }

    /// Number of domains (= injection shards).
    #[inline]
    pub fn num_domains(&self) -> usize {
        self.starts.len() - 1
    }

    /// The hierarchy level the domains were taken from.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Domain index of `worker`.
    #[inline]
    pub fn domain_of(&self, worker: usize) -> usize {
        self.domain_of[worker]
    }

    /// The contiguous worker-id range of domain `d`.
    #[inline]
    pub fn domain_range(&self, d: usize) -> std::ops::Range<usize> {
        self.starts[d]..self.starts[d + 1]
    }

    /// The distance-ordered domain-visit sequence for workers of domain `d`:
    /// a permutation of `0..num_domains()` whose first element is `d`
    /// itself, followed by the remaining domains nearest enclosing group
    /// first.
    #[inline]
    pub fn sweep_order(&self, d: usize) -> &[usize] {
        &self.sweep[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn width_one_gives_one_domain_per_worker() {
        let topo = Topology::balanced(6);
        let domains = Domains::new(&topo, 1);
        assert_eq!(domains.num_domains(), 6);
        for w in 0..6 {
            assert_eq!(domains.domain_of(w), w);
            assert_eq!(domains.domain_range(w), w..w + 1);
            assert_eq!(domains.sweep_order(w)[0], w);
        }
    }

    #[test]
    fn width_at_least_p_degenerates_to_a_single_domain() {
        for p in [1usize, 3, 8, 13] {
            let topo = Topology::balanced(p);
            for width in [p, p + 1, usize::MAX] {
                let domains = Domains::new(&topo, width);
                assert_eq!(domains.num_domains(), 1, "p={p} width={width}");
                assert_eq!(domains.domain_range(0), 0..p);
                assert_eq!(domains.sweep_order(0), &[0]);
            }
        }
    }

    #[test]
    fn dual_socket_example_shards_per_socket() {
        // 2 sockets x 3 cores (levels 1 < 2 < 3 < 6): width 3 picks the
        // socket level, one shard per socket.
        let topo = Topology::from_machine(&[3, 2]);
        let domains = Domains::new(&topo, 3);
        assert_eq!(domains.level(), 2);
        assert_eq!(domains.num_domains(), 2);
        assert_eq!(domains.domain_range(0), 0..3);
        assert_eq!(domains.domain_range(1), 3..6);
        assert_eq!(domains.sweep_order(0), &[0, 1]);
        assert_eq!(domains.sweep_order(1), &[1, 0]);
    }

    #[test]
    fn sweep_is_distance_ordered_on_sixteen_threads() {
        // p = 16, width 4: four 4-thread domains.  Domain 0's nearest ring
        // at level 3 (groups of 8) is domain 1; the rest follow.
        let topo = Topology::power_of_two(16);
        let domains = Domains::new(&topo, 4);
        assert_eq!(domains.num_domains(), 4);
        assert_eq!(domains.sweep_order(0), &[0, 1, 2, 3]);
        assert_eq!(domains.sweep_order(1), &[1, 0, 2, 3]);
        assert_eq!(domains.sweep_order(2), &[2, 3, 0, 1]);
        assert_eq!(domains.sweep_order(3), &[3, 2, 0, 1]);
    }

    fn arb_p() -> impl Strategy<Value = usize> {
        1usize..=96
    }

    proptest! {
        #[test]
        fn domains_partition_workers_at_every_width(
            p in arb_p(),
            width in 0usize..=128,
        ) {
            let topo = Topology::balanced(p);
            let domains = Domains::new(&topo, width);
            // Ranges tile 0..p exactly once, in order.
            let mut next = 0;
            for d in 0..domains.num_domains() {
                let range = domains.domain_range(d);
                prop_assert_eq!(range.start, next);
                prop_assert!(!range.is_empty());
                prop_assert!(range.len() <= width.max(1));
                // Every worker in the range maps back to this domain.
                for w in range.clone() {
                    prop_assert_eq!(domains.domain_of(w), d);
                }
                next = range.end;
            }
            prop_assert_eq!(next, p);
        }

        #[test]
        fn sweep_visits_every_domain_exactly_once_starting_local(
            p in arb_p(),
            width in 0usize..=128,
        ) {
            let topo = Topology::balanced(p);
            let domains = Domains::new(&topo, width);
            let n = domains.num_domains();
            for d in 0..n {
                let order = domains.sweep_order(d);
                prop_assert_eq!(order.len(), n);
                prop_assert_eq!(order[0], d);
                let mut seen = vec![false; n];
                for &visited in order {
                    prop_assert!(visited < n);
                    prop_assert!(!seen[visited], "domain visited twice");
                    seen[visited] = true;
                }
                prop_assert!(seen.into_iter().all(|s| s));
            }
        }

        #[test]
        fn sweep_rings_respect_hierarchy_distance(
            p in arb_p(),
            width in 0usize..=128,
        ) {
            // If domain b appears before domain c in a's sweep, then a
            // shares an enclosing group with b at a level no higher than the
            // one at which it shares with c (nearest ring first).
            let topo = Topology::balanced(p);
            let domains = Domains::new(&topo, width);
            let join_level = |a: usize, b: usize| -> usize {
                let (wa, wb) = (domains.domain_range(a).start, domains.domain_range(b).start);
                (0..topo.num_queue_levels())
                    .find(|&l| topo.group_range(wa, l).contains(&wb))
                    .expect("top level contains everything")
            };
            for d in 0..domains.num_domains() {
                let order = domains.sweep_order(d);
                for pair in order.windows(2) {
                    prop_assert!(join_level(d, pair[0]) <= join_level(d, pair[1]));
                }
            }
        }
    }
}
