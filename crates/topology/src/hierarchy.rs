//! The thread hierarchy: level sizes, groups, partners and team boundaries.

use teamsteal_util::bits;
use teamsteal_util::rng::Xoshiro256;

/// One level of the steal / team hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Nominal size `n_ℓ` of a group at this level (Refinement 3).  For a
    /// power-of-two machine this is exactly `2^ℓ`.
    pub nominal_size: usize,
}

/// Where a thread stands with respect to a team built by a coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// The thread belongs to the team and executes the task with this local
    /// id (0 is the leftmost thread of the team, which is not necessarily the
    /// coordinator).
    Member {
        /// Consecutive local id within the team, `0 ≤ local_id < team_size`.
        local_id: usize,
    },
    /// The thread is outside the team boundaries and is never required.
    Outside,
}

/// Precomputed description of the machine's thread hierarchy.
///
/// A `Topology` knows, for every thread id and every level,
///
/// * the **group** (contiguous id range) the thread belongs to — a team built
///   for a task whose requirement maps to that level occupies exactly this
///   group,
/// * the **deterministic partner** visited during stealing / team building
///   (Section 3: bit-flipping; Refinement 3: precomputed array `P[ℓ]`, which
///   may be absent at some levels for non-power-of-two machines),
/// * the per-thread **available team size** `n'_ℓ ≤ n_ℓ`.
///
/// All queries are O(1) lookups into precomputed tables; construction is
/// O(p · log p).
#[derive(Debug, Clone)]
pub struct Topology {
    p: usize,
    /// Nominal level sizes `n_0 = 1 < n_1 < … < n_L = p`.
    level_sizes: Vec<usize>,
    /// `group_base[ℓ][i]` — first id of the level-`ℓ` group containing `i`.
    group_base: Vec<Vec<usize>>,
    /// `group_size[ℓ][i]` — size of the level-`ℓ` group containing `i`
    /// (the paper's `n'_ℓ` for thread `i`).
    group_size: Vec<Vec<usize>>,
    /// `partners[i][ℓ]` — deterministic partner of `i` at steal level `ℓ`
    /// (the paper's `P[ℓ]`), or `None` if the thread has no partner there.
    partners: Vec<Vec<Option<usize>>>,
}

impl Topology {
    /// Builds the classic power-of-two topology of the base algorithm
    /// (Section 3): level sizes `1, 2, 4, …, p` and partners by bit-flipping.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or not a power of two.
    pub fn power_of_two(p: usize) -> Self {
        assert!(bits::is_pow2(p), "power_of_two requires p to be a power of two (got {p})");
        let sizes: Vec<usize> = (0..=bits::msb_index(p)).map(|l| 1usize << l).collect();
        Self::from_level_sizes(&sizes)
    }

    /// Builds a balanced topology for an arbitrary number of threads
    /// (Refinement 3) by repeatedly halving: `n_L = p`,
    /// `n_{ℓ-1} = ⌈n_ℓ / 2⌉`, down to `n_0 = 1`.
    ///
    /// For powers of two this coincides with [`Topology::power_of_two`].
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn balanced(p: usize) -> Self {
        assert!(p > 0, "at least one thread is required");
        let mut sizes = vec![p];
        while *sizes.last().unwrap() > 1 {
            let next = sizes.last().unwrap().div_ceil(2);
            sizes.push(next);
        }
        sizes.reverse();
        Self::from_level_sizes(&sizes)
    }

    /// Builds a topology from an explicit machine description, e.g.
    /// `&[2, 3]` for a dual-socket machine with three cores per socket
    /// (the paper's Refinement 3 example, which yields level sizes
    /// `1 < 2 < 3 < 6` after the mandatory unit level is inserted).
    ///
    /// The slice lists, from the innermost sharing domain outwards, how many
    /// children each domain has; the product must not exceed `usize::MAX`.
    /// Extra unit levels are inserted whenever a domain more than doubles the
    /// previous level size, so the constraint `n_{ℓ-1} < n_ℓ ≤ 2·n_{ℓ-1}` of
    /// Refinement 3 always holds.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty or contains a zero.
    pub fn from_machine(domains: &[usize]) -> Self {
        assert!(!domains.is_empty(), "machine description must not be empty");
        assert!(domains.iter().all(|&d| d > 0), "domain sizes must be positive");
        let mut sizes = vec![1usize];
        let mut cur = 1usize;
        for &d in domains {
            let target = cur * d;
            // Insert intermediate levels so each level at most doubles.
            while cur * 2 < target {
                cur *= 2;
                sizes.push(cur);
            }
            if target > cur {
                cur = target;
                sizes.push(cur);
            }
        }
        Self::from_level_sizes(&sizes)
    }

    /// Builds a topology from explicit level sizes `n_0, …, n_L`.
    ///
    /// # Panics
    ///
    /// Panics unless `n_0 == 1`, the sizes are strictly increasing, and each
    /// level is at most twice the previous one (`n_{ℓ-1} < n_ℓ ≤ 2·n_{ℓ-1}`,
    /// Refinement 3).  A single level `[1]` describes a one-thread machine.
    pub fn from_level_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "at least one level is required");
        assert_eq!(sizes[0], 1, "the innermost level must have size 1");
        for w in sizes.windows(2) {
            assert!(
                w[0] < w[1] && w[1] <= 2 * w[0],
                "level sizes must satisfy n_(l-1) < n_l <= 2*n_(l-1), got {} then {}",
                w[0],
                w[1]
            );
        }
        let p = *sizes.last().unwrap();
        let num_levels = sizes.len();

        // Group decomposition, top-down: the single level-L group [0, p)
        // splits at each lower level ℓ into a left part of (at most) the
        // nominal size n_ℓ and a right remainder.
        let mut group_base = vec![vec![0usize; p]; num_levels];
        let mut group_size = vec![vec![0usize; p]; num_levels];
        // Top level: one group covering everything.
        for i in 0..p {
            group_base[num_levels - 1][i] = 0;
            group_size[num_levels - 1][i] = p;
        }
        for level in (0..num_levels.saturating_sub(1)).rev() {
            let nominal = sizes[level];
            let mut i = 0;
            while i < p {
                // The enclosing group at level `level + 1`.
                let parent_base = group_base[level + 1][i];
                let parent_size = group_size[level + 1][i];
                let left = nominal.min(parent_size);
                let right = parent_size - left;
                for j in parent_base..parent_base + left {
                    group_base[level][j] = parent_base;
                    group_size[level][j] = left;
                }
                for j in parent_base + left..parent_base + left + right {
                    group_base[level][j] = parent_base + left;
                    group_size[level][j] = right;
                }
                i = parent_base + parent_size;
            }
        }

        // Partner arrays: the partner of `i` at steal level ℓ is the thread
        // with the same offset in the sibling level-ℓ subgroup of the level-
        // (ℓ+1) group containing `i` (bit flipping in the power-of-two case).
        let steal_levels = num_levels - 1;
        let mut partners = vec![vec![None; steal_levels]; p];
        for (i, row) in partners.iter_mut().enumerate() {
            for (level, slot) in row.iter_mut().enumerate() {
                let parent_base = group_base[level + 1][i];
                let parent_size = group_size[level + 1][i];
                let my_base = group_base[level][i];
                let my_size = group_size[level][i];
                if my_size == parent_size {
                    // The group did not split at this level: no partner.
                    continue;
                }
                let offset = i - my_base;
                let sibling_base;
                let sibling_size;
                if my_base == parent_base {
                    // We are in the left subgroup.
                    sibling_base = parent_base + my_size;
                    sibling_size = parent_size - my_size;
                } else {
                    sibling_base = parent_base;
                    sibling_size = my_base - parent_base;
                }
                if offset < sibling_size {
                    *slot = Some(sibling_base + offset);
                }
            }
        }

        Topology {
            p,
            level_sizes: sizes.to_vec(),
            group_base,
            group_size,
            partners,
        }
    }

    /// Number of hardware threads `p`.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.p
    }

    /// Number of steal levels, i.e. how many partners a thread visits per
    /// steal round (the paper's `log p`).
    #[inline]
    pub fn num_steal_levels(&self) -> usize {
        self.level_sizes.len() - 1
    }

    /// Number of task-queue levels per thread (Refinement 1): one queue per
    /// hierarchy level, including the level-0 queue for sequential tasks.
    #[inline]
    pub fn num_queue_levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Nominal size `n_ℓ` of groups at `level`.
    #[inline]
    pub fn nominal_level_size(&self, level: usize) -> usize {
        self.level_sizes[level]
    }

    /// All nominal level sizes `n_0 … n_L`.
    #[inline]
    pub fn level_sizes(&self) -> &[usize] {
        &self.level_sizes
    }

    /// The levels as [`Level`] descriptors.
    pub fn levels(&self) -> Vec<Level> {
        self.level_sizes
            .iter()
            .map(|&nominal_size| Level { nominal_size })
            .collect()
    }

    /// First id of the level-`level` group containing `thread`.
    #[inline]
    pub fn group_base(&self, thread: usize, level: usize) -> usize {
        self.group_base[level][thread]
    }

    /// Size of the level-`level` group containing `thread` — the paper's
    /// per-thread available team size `n'_ℓ`.
    #[inline]
    pub fn group_size(&self, thread: usize, level: usize) -> usize {
        self.group_size[level][thread]
    }

    /// The id range of the level-`level` group containing `thread`.
    #[inline]
    pub fn group_range(&self, thread: usize, level: usize) -> std::ops::Range<usize> {
        let base = self.group_base(thread, level);
        base..base + self.group_size(thread, level)
    }

    /// Deterministic partner of `thread` at steal `level` (Section 3 /
    /// Refinement 3), or `None` if the thread has no partner at that level.
    #[inline]
    pub fn partner(&self, thread: usize, level: usize) -> Option<usize> {
        self.partners[thread][level]
    }

    /// Refinement 4: a partner at steal `level` chosen uniformly at random
    /// from the *sibling subgroup* — the same set of threads the
    /// deterministic partner belongs to, so the hierarchy (and therefore team
    /// shape) is preserved while the contention pattern is randomized.
    ///
    /// Returns `None` exactly when [`Topology::partner`] does, i.e. when the
    /// sibling subgroup is empty.
    pub fn partner_randomized(
        &self,
        thread: usize,
        level: usize,
        rng: &mut Xoshiro256,
    ) -> Option<usize> {
        let parent_base = self.group_base[level + 1][thread];
        let parent_size = self.group_size[level + 1][thread];
        let my_base = self.group_base[level][thread];
        let my_size = self.group_size[level][thread];
        if my_size == parent_size {
            return None;
        }
        let (sibling_base, sibling_size) = if my_base == parent_base {
            (parent_base + my_size, parent_size - my_size)
        } else {
            (parent_base, my_base - parent_base)
        };
        if sibling_size == 0 {
            return None;
        }
        Some(sibling_base + rng.next_usize_below(sibling_size))
    }

    /// The queue / team level a task with thread requirement `req` maps to
    /// when held by `thread`: the smallest level whose group around `thread`
    /// can accommodate `req` threads.  Requirements larger than `p` are
    /// clamped to the top level (they can never be satisfied and the
    /// scheduler rejects them earlier).
    pub fn level_for_requirement(&self, thread: usize, req: usize) -> usize {
        let req = req.max(1);
        for level in 0..self.level_sizes.len() {
            if self.group_size[level][thread] >= req {
                return level;
            }
        }
        self.level_sizes.len() - 1
    }

    /// The team that a coordinator `coordinator` builds for a task requiring
    /// `req` threads: the id range of the smallest group around the
    /// coordinator that can hold `req` threads, together with its size.
    ///
    /// For a power-of-two machine and power-of-two `req` this is exactly the
    /// aligned block `kr … (k+1)r − 1` from Section 3.1.  For other
    /// requirements the team is the enclosing group (requirement rounded up,
    /// Refinement 2).
    pub fn team_for(&self, coordinator: usize, req: usize) -> std::ops::Range<usize> {
        let level = self.level_for_requirement(coordinator, req);
        self.group_range(coordinator, level)
    }

    /// Membership of `thread` in the team built by `coordinator` for a task
    /// requiring `req` threads, and the local id it would get.
    pub fn membership(&self, coordinator: usize, thread: usize, req: usize) -> Membership {
        let team = self.team_for(coordinator, req);
        if team.contains(&thread) {
            Membership::Member {
                local_id: thread - team.start,
            }
        } else {
            Membership::Outside
        }
    }

    /// The paper's `overlap(x, y, size)` predicate (Algorithm 9): would
    /// threads `x` and `y` belong to the same team for a task of the given
    /// size (as seen from `x`)?
    pub fn overlap(&self, x: usize, y: usize, size: usize) -> bool {
        self.team_for(x, size).contains(&y)
    }

    /// Local id of `thread` in a team of size `team_size` containing it —
    /// Section 3.1's "subtract the leftmost thread id of the team".  This is
    /// the fast path used during execution, where the team size is already
    /// known to be one of the group sizes around `thread`.
    pub fn local_id(&self, thread: usize, team_size: usize) -> usize {
        let level = self.level_for_requirement(thread, team_size);
        thread - self.group_base(thread, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn power_of_two_matches_bit_flipping() {
        for &p in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let topo = Topology::power_of_two(p);
            assert_eq!(topo.num_threads(), p);
            assert_eq!(topo.num_steal_levels(), bits::levels_for(p));
            for i in 0..p {
                for level in 0..topo.num_steal_levels() {
                    assert_eq!(
                        topo.partner(i, level),
                        Some(bits::flip_partner(i, level)),
                        "p={p} thread={i} level={level}"
                    );
                    assert_eq!(topo.group_base(i, level), bits::team_base(i, 1 << level));
                    assert_eq!(topo.group_size(i, level), 1 << level);
                }
            }
        }
    }

    #[test]
    fn paper_example_dual_socket_three_cores() {
        // Refinement 3 example: 2 sockets x 3 cores => a 3-thread task must
        // fit on one socket.
        let topo = Topology::from_machine(&[3, 2]);
        assert_eq!(topo.num_threads(), 6);
        assert_eq!(topo.level_sizes(), &[1, 2, 3, 6]);
        // Teams of 3 threads are exactly one socket.
        assert_eq!(topo.team_for(0, 3), 0..3);
        assert_eq!(topo.team_for(2, 3), 0..3);
        assert_eq!(topo.team_for(3, 3), 3..6);
        assert_eq!(topo.team_for(5, 3), 3..6);
        // Teams of 4..6 threads span the whole machine.
        assert_eq!(topo.team_for(1, 4), 0..6);
    }

    #[test]
    fn balanced_six_threads() {
        let topo = Topology::balanced(6);
        assert_eq!(topo.level_sizes(), &[1, 2, 3, 6]);
        // Thread 2 sits in a singleton level-1 group and has no partner at
        // level 0 (the group [2,3) does not split).
        assert_eq!(topo.partner(2, 0), None);
        assert_eq!(topo.partner(0, 0), Some(1));
        assert_eq!(topo.partner(1, 0), Some(0));
        // Level 1: [0,2) vs [2,3): thread 0 <-> 2, thread 1 has no partner.
        assert_eq!(topo.partner(0, 1), Some(2));
        assert_eq!(topo.partner(2, 1), Some(0));
        assert_eq!(topo.partner(1, 1), None);
        // Level 2: [0,3) vs [3,6): same-offset pairing.
        assert_eq!(topo.partner(0, 2), Some(3));
        assert_eq!(topo.partner(1, 2), Some(4));
        assert_eq!(topo.partner(2, 2), Some(5));
        assert_eq!(topo.partner(5, 2), Some(2));
    }

    #[test]
    fn single_thread_topology() {
        let topo = Topology::balanced(1);
        assert_eq!(topo.num_threads(), 1);
        assert_eq!(topo.num_steal_levels(), 0);
        assert_eq!(topo.num_queue_levels(), 1);
        assert_eq!(topo.team_for(0, 1), 0..1);
        assert_eq!(topo.local_id(0, 1), 0);
    }

    #[test]
    fn membership_and_local_ids_power_of_two() {
        let topo = Topology::power_of_two(8);
        // Coordinator 5, r = 4 => team {4,5,6,7}.
        assert_eq!(topo.team_for(5, 4), 4..8);
        assert_eq!(topo.membership(5, 4, 4), Membership::Member { local_id: 0 });
        assert_eq!(topo.membership(5, 7, 4), Membership::Member { local_id: 3 });
        assert_eq!(topo.membership(5, 3, 4), Membership::Outside);
        // Degenerate r = 1: singleton team.
        assert_eq!(topo.team_for(6, 1), 6..7);
        assert_eq!(topo.membership(6, 6, 1), Membership::Member { local_id: 0 });
        assert_eq!(topo.membership(6, 7, 1), Membership::Outside);
    }

    #[test]
    fn overlap_matches_bitwise_overlap_for_pow2() {
        let topo = Topology::power_of_two(16);
        for x in 0..16 {
            for y in 0..16 {
                for r_log in 0..=4 {
                    let r = 1usize << r_log;
                    assert_eq!(
                        topo.overlap(x, y, r),
                        bits::overlap(x, y, r),
                        "x={x} y={y} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_pow2_requirement_rounds_up_to_group() {
        let topo = Topology::power_of_two(8);
        // r = 3 rounds up to the 4-thread group.
        assert_eq!(topo.team_for(1, 3), 0..4);
        assert_eq!(topo.level_for_requirement(1, 3), 2);
        // r = 5..8 needs the whole machine.
        assert_eq!(topo.team_for(6, 5), 0..8);
    }

    #[test]
    fn from_machine_inserts_intermediate_levels() {
        // 8 cores per socket, 2 sockets: 1,2,4,8,16.
        let topo = Topology::from_machine(&[8, 2]);
        assert_eq!(topo.level_sizes(), &[1, 2, 4, 8, 16]);
        // A quad-core domain: 1,2,4 then 3 sockets => 4 < 8 <= 8, then 12.
        let topo = Topology::from_machine(&[4, 3]);
        assert_eq!(topo.level_sizes(), &[1, 2, 4, 8, 12]);
    }

    #[test]
    #[should_panic]
    fn level_sizes_must_start_at_one() {
        let _ = Topology::from_level_sizes(&[2, 4]);
    }

    #[test]
    #[should_panic]
    fn level_sizes_must_at_most_double() {
        let _ = Topology::from_level_sizes(&[1, 3]);
    }

    fn arb_p() -> impl Strategy<Value = usize> {
        1usize..=96
    }

    proptest! {
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn groups_partition_the_machine(p in arb_p()) {
            let topo = Topology::balanced(p);
            for level in 0..topo.num_queue_levels() {
                // Every thread is in exactly one group; group metadata is
                // consistent across all members.
                let mut covered = vec![false; p];
                let mut i = 0;
                while i < p {
                    let base = topo.group_base(i, level);
                    let size = topo.group_size(i, level);
                    prop_assert_eq!(base, i);
                    prop_assert!(size >= 1);
                    prop_assert!(size <= topo.nominal_level_size(level));
                    for j in base..base + size {
                        prop_assert_eq!(topo.group_base(j, level), base);
                        prop_assert_eq!(topo.group_size(j, level), size);
                        prop_assert!(!covered[j]);
                        covered[j] = true;
                    }
                    i = base + size;
                }
                prop_assert!(covered.into_iter().all(|c| c));
            }
        }

        #[test]
        fn partners_are_symmetric_or_absent(p in arb_p()) {
            let topo = Topology::balanced(p);
            for i in 0..p {
                for level in 0..topo.num_steal_levels() {
                    if let Some(partner) = topo.partner(i, level) {
                        prop_assert!(partner < p);
                        prop_assert_ne!(partner, i);
                        // The partner lives in the same parent group but a
                        // different child group.
                        prop_assert_eq!(
                            topo.group_base(i, level + 1),
                            topo.group_base(partner, level + 1)
                        );
                        prop_assert_ne!(
                            topo.group_base(i, level),
                            topo.group_base(partner, level)
                        );
                        // Partnership is symmetric whenever both sides have a
                        // partner (the right subgroup always points back).
                        if let Some(back) = topo.partner(partner, level) {
                            prop_assert_eq!(back, i);
                        }
                    }
                }
            }
        }

        #[test]
        fn partners_are_symmetric_on_arbitrary_level_chains(
            target in 2usize..=96,
            seed in any::<u64>(),
        ) {
            // Beyond `balanced` (which halves evenly), grow an arbitrary
            // valid level chain n_{l-1} < n_l <= 2*n_{l-1} — deliberately
            // hitting non-power-of-two sizes at every level — and check the
            // same partner invariants hold.
            let mut rng = Xoshiro256::new(seed);
            let mut sizes = vec![1usize];
            while *sizes.last().unwrap() < target {
                let cur = *sizes.last().unwrap();
                let step = 1 + rng.next_usize_below(cur);
                sizes.push((cur + step).min(target).min(2 * cur));
            }
            let topo = Topology::from_level_sizes(&sizes);
            let p = topo.num_threads();
            for i in 0..p {
                for level in 0..topo.num_steal_levels() {
                    if let Some(partner) = topo.partner(i, level) {
                        prop_assert!(partner < p);
                        prop_assert_ne!(partner, i);
                        prop_assert_eq!(
                            topo.group_base(i, level + 1),
                            topo.group_base(partner, level + 1)
                        );
                        prop_assert_ne!(
                            topo.group_base(i, level),
                            topo.group_base(partner, level)
                        );
                        if let Some(back) = topo.partner(partner, level) {
                            prop_assert_eq!(back, i);
                        }
                    }
                }
            }
        }

        #[test]
        fn every_pair_connected_through_top_level(p in arb_p()) {
            // Reachability: repeatedly following partner edges upwards from
            // any thread reaches threads in every top-level subgroup, which is
            // what guarantees teams of any feasible size can eventually form
            // (Lemma 1 relies on this).
            let topo = Topology::balanced(p);
            for i in 0..p {
                // The union of i's groups over all levels must end at [0, p).
                let top = topo.num_queue_levels() - 1;
                prop_assert_eq!(topo.group_range(i, top), 0..p);
            }
        }

        #[test]
        fn local_ids_consecutive_within_any_team(p in arb_p(), req in 1usize..=96) {
            let topo = Topology::balanced(p);
            let req = req.min(p);
            for coord in 0..p {
                let team = topo.team_for(coord, req);
                prop_assert!(team.contains(&coord));
                prop_assert!(team.len() >= req);
                let mut seen = vec![false; team.len()];
                for t in team.clone() {
                    match topo.membership(coord, t, req) {
                        Membership::Member { local_id } => {
                            prop_assert!(local_id < team.len());
                            prop_assert!(!seen[local_id]);
                            seen[local_id] = true;
                        }
                        Membership::Outside => prop_assert!(false, "team member marked outside"),
                    }
                }
                prop_assert!(seen.into_iter().all(|s| s));
                // Threads outside the range are Outside.
                for t in 0..p {
                    if !team.contains(&t) {
                        prop_assert_eq!(topo.membership(coord, t, req), Membership::Outside);
                    }
                }
            }
        }

        #[test]
        fn randomized_partner_stays_in_sibling_group(p in 2usize..=64, seed in any::<u64>()) {
            let topo = Topology::balanced(p);
            let mut rng = Xoshiro256::new(seed);
            for i in 0..p {
                for level in 0..topo.num_steal_levels() {
                    let det = topo.partner(i, level);
                    for _ in 0..8 {
                        let rnd = topo.partner_randomized(i, level, &mut rng);
                        match (det, rnd) {
                            (None, None) => {}
                            (Some(d), Some(r)) => {
                                // Same sibling subgroup as the deterministic partner.
                                prop_assert_eq!(
                                    topo.group_base(d, level),
                                    topo.group_base(r, level)
                                );
                            }
                            // The randomized partner exists iff the sibling
                            // subgroup is non-empty, but the deterministic
                            // partner may be missing when the thread's offset
                            // exceeds the sibling size.
                            (None, Some(r)) => {
                                prop_assert_ne!(
                                    topo.group_base(r, level),
                                    topo.group_base(i, level)
                                );
                            }
                            (Some(_), None) => prop_assert!(false, "lost a partner"),
                        }
                    }
                }
            }
        }

        #[test]
        fn level_for_requirement_is_minimal(p in arb_p(), req in 1usize..=96) {
            let topo = Topology::balanced(p);
            let req = req.min(p);
            for i in 0..p {
                let level = topo.level_for_requirement(i, req);
                prop_assert!(topo.group_size(i, level) >= req);
                if level > 0 {
                    prop_assert!(topo.group_size(i, level - 1) < req);
                }
            }
        }
    }
}
