//! Thread hierarchy, deterministic partner computation and team boundary
//! math for the team-building work-stealer.
//!
//! The paper (Section 3) assigns every hardware thread a fixed integer id
//! `I ∈ [0, p)` and derives, for each *level* `ℓ = 0 … log p − 1`, a unique
//! partner obtained by flipping bit `ℓ` of `I`.  Steal attempts and
//! team-building visits those `log p` partners in order, which guarantees two
//! properties the whole scheduler rests on:
//!
//! 1. the set of threads that can ever register at a given coordinator for a
//!    team of size `2^ℓ` is exactly the aligned block of `2^ℓ` consecutive
//!    ids containing the coordinator, so teams are always of the form
//!    `{kr, kr+1, …, (k+1)r − 1}`, and
//! 2. every thread can compute its local id inside a team from the team size
//!    and its own global id alone (Section 3.1).
//!
//! This crate packages that arithmetic as [`Topology`]:
//!
//! * the classic power-of-two case (`Topology::power_of_two`),
//! * **Refinement 3** — an arbitrary number of hardware threads via a
//!   hierarchy of level sizes `n_ℓ` with `n_{ℓ-1} < n_ℓ ≤ 2·n_{ℓ-1}` and
//!   precomputed per-thread partner arrays (`Topology::balanced`,
//!   `Topology::from_level_sizes`),
//! * **Refinement 4** — randomization of the partner *within* a level
//!   ([`Topology::partner_randomized`]).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod domains;
mod hierarchy;

pub use domains::Domains;
pub use hierarchy::{Level, Topology};

/// Policy for choosing a steal / team-building partner at a given level.
///
/// * [`StealPolicy::Deterministic`] is the paper's base scheme (bit
///   flipping / precomputed partner array).
/// * [`StealPolicy::RandomizedWithinLevel`] is Refinement 4: the partner at
///   level `ℓ` is drawn uniformly from all ids that differ from the stealing
///   thread in bit `ℓ` and arbitrarily in the bits below `ℓ`, preserving the
///   hierarchy while avoiding degenerate idle patterns.
/// * [`StealPolicy::UniformRandom`] is classic randomized work-stealing
///   (uniformly random victim, no hierarchy) — the paper's *Randfork*
///   baseline.  Team-building is not supported under this policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StealPolicy {
    /// Deterministic bit-flip / precomputed partner (paper, Section 3).
    #[default]
    Deterministic,
    /// Randomize the bits below the flipped bit (paper, Refinement 4).
    RandomizedWithinLevel,
    /// Uniformly random victim (classic randomized work-stealing).
    UniformRandom,
}
