//! Team-parallel reductions.
//!
//! A reduction is the simplest data-parallel kernel: every team member folds
//! a disjoint, contiguous chunk of the input into a private partial result,
//! the team synchronizes once, and the barrier leader combines the partials.
//! On the `teamsteal` scheduler the whole reduction is **one** team task, so
//! the cost of assembling the workers is exactly one registration CAS per
//! member (Section 3 of the paper) — there is no per-chunk task spawn as in a
//! fork-join formulation.
//!
//! The team size follows the paper's `getBestNp` policy
//! ([`best_team_size`]): the largest power of two that
//! still leaves every member a meaningful amount of work, and plain
//! sequential execution below that threshold.

use std::sync::Arc;

use teamsteal_core::Scheduler;
use teamsteal_util::SendConstPtr;

use crate::slots::TeamSlots;
use crate::team_size::{best_team_size, chunk_range};

/// Default minimum number of elements each team member must receive before a
/// team reduction is worth its formation overhead (one CAS per member plus a
/// barrier).  Below this the reduction runs sequentially on the caller.
pub const MIN_ELEMENTS_PER_MEMBER: usize = 8 * 1024;

/// Reduces `data` with the associative operation `combine` (identity element
/// `identity`) using a single data-parallel team task.
///
/// `combine` must be associative; if it is also commutative the result is
/// identical to the sequential fold, otherwise the chunked evaluation order
/// still yields the same result for associative operations because chunks are
/// combined left-to-right.
///
/// ```
/// use teamsteal_core::Scheduler;
/// use teamsteal_apps::reduce::team_reduce;
///
/// let scheduler = Scheduler::with_threads(2);
/// let data: Vec<u64> = (0..50_000).collect();
/// let max = team_reduce(&scheduler, &data, 0u64, |a, b| a.max(b));
/// assert_eq!(max, 49_999);
/// ```
pub fn team_reduce<T, F>(scheduler: &Scheduler, data: &[T], identity: T, combine: F) -> T
where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    team_reduce_with(scheduler, data, identity, combine, MIN_ELEMENTS_PER_MEMBER)
}

/// Like [`team_reduce`] with an explicit work-per-member threshold, exposed
/// for the benchmark harness's ablation over the team-size policy.
pub fn team_reduce_with<T, F>(
    scheduler: &Scheduler,
    data: &[T],
    identity: T,
    combine: F,
    min_per_member: usize,
) -> T
where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let p = scheduler.num_threads();
    let team = best_team_size(n, min_per_member, p);
    if team <= 1 {
        return data.iter().copied().fold(identity, combine);
    }

    let input = SendConstPtr::from_slice(data);
    // Slots are sized to the machine, not the request: on non power-of-two
    // machines (Refinement 3) the executing team may be the enclosing
    // hierarchy group and therefore larger than `team`.
    let partials = Arc::new(TeamSlots::new(p, identity));
    let result = Arc::new(TeamSlots::new(1, identity));
    let combine = Arc::new(combine);

    {
        let partials = Arc::clone(&partials);
        let result = Arc::clone(&result);
        let combine = Arc::clone(&combine);
        scheduler.run_team(team, move |ctx| {
            let members = ctx.team_size();
            let me = ctx.local_id();
            // SAFETY: `data` outlives the enclosing scope (run_team blocks),
            // and nobody mutates it while the team reads it.
            let slice = unsafe { input.slice(n) };
            let range = chunk_range(n, members, me);
            let mut acc = identity;
            for &x in &slice[range] {
                acc = combine(acc, x);
            }
            // SAFETY: slot `me` is written only by this member before the
            // barrier.
            unsafe { partials.write(me, acc) };
            if ctx.barrier() {
                // Exactly one member (the last arriver) combines the partials.
                let mut total = identity;
                for i in 0..members {
                    // SAFETY: all members wrote their slot before the barrier.
                    total = combine(total, unsafe { partials.read(i) });
                }
                // SAFETY: only the single barrier leader writes the result.
                unsafe { result.write(0, total) };
            }
        });
    }

    // SAFETY: run_team returned, so every member (including the leader that
    // wrote the result) has finished; scope completion orders that write
    // before this read.
    unsafe { result.read(0) }
}

/// Sum of a `u64` slice via a team reduction.
pub fn parallel_sum(scheduler: &Scheduler, data: &[u64]) -> u64 {
    team_reduce(scheduler, data, 0u64, |a, b| a.wrapping_add(b))
}

/// Minimum of a slice via a team reduction; `None` for an empty slice.
pub fn parallel_min(scheduler: &Scheduler, data: &[u64]) -> Option<u64> {
    if data.is_empty() {
        return None;
    }
    Some(team_reduce(scheduler, data, u64::MAX, |a, b| a.min(b)))
}

/// Maximum of a slice via a team reduction; `None` for an empty slice.
pub fn parallel_max(scheduler: &Scheduler, data: &[u64]) -> Option<u64> {
    if data.is_empty() {
        return None;
    }
    Some(team_reduce(scheduler, data, u64::MIN, |a, b| a.max(b)))
}

/// Dot product of two equally long `f64` slices via a team reduction over the
/// index range (each member accumulates its chunk of pairwise products).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_product(scheduler: &Scheduler, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equally long vectors");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let p = scheduler.num_threads();
    let team = best_team_size(n, MIN_ELEMENTS_PER_MEMBER, p);
    if team <= 1 {
        return a.iter().zip(b).map(|(x, y)| x * y).sum();
    }

    let pa = SendConstPtr::from_slice(a);
    let pb = SendConstPtr::from_slice(b);
    let partials = Arc::new(TeamSlots::new(p, 0.0f64));
    let result = Arc::new(TeamSlots::new(1, 0.0f64));
    {
        let partials = Arc::clone(&partials);
        let result = Arc::clone(&result);
        scheduler.run_team(team, move |ctx| {
            let members = ctx.team_size();
            let me = ctx.local_id();
            // SAFETY: both inputs outlive the blocking run_team call and are
            // never mutated.
            let (a, b) = unsafe { (pa.slice(n), pb.slice(n)) };
            let range = chunk_range(n, members, me);
            let mut acc = 0.0;
            for i in range {
                acc += a[i] * b[i];
            }
            // SAFETY: slot `me` is exclusive to this member before the barrier.
            unsafe { partials.write(me, acc) };
            if ctx.barrier() {
                let mut total = 0.0;
                for i in 0..members {
                    // SAFETY: written before the barrier by each member.
                    total += unsafe { partials.read(i) };
                }
                // SAFETY: single leader writes the result.
                unsafe { result.write(0, total) };
            }
        });
    }
    // SAFETY: ordered by scope completion.
    unsafe { result.read(0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scheduler() -> Scheduler {
        Scheduler::with_threads(4)
    }

    #[test]
    fn empty_input_returns_identity() {
        let s = scheduler();
        assert_eq!(team_reduce(&s, &[], 7u64, |a, b| a + b), 7);
        assert_eq!(parallel_sum(&s, &[]), 0);
        assert_eq!(parallel_min(&s, &[]), None);
        assert_eq!(parallel_max(&s, &[]), None);
        assert_eq!(dot_product(&s, &[], &[]), 0.0);
    }

    #[test]
    fn small_input_stays_sequential_but_correct() {
        let s = scheduler();
        let data: Vec<u64> = (1..=1000).collect();
        assert_eq!(parallel_sum(&s, &data), 500_500);
        assert_eq!(s.metrics().teams_formed, 0, "small inputs must not build teams");
    }

    #[test]
    fn large_sum_uses_a_team_and_matches_sequential() {
        let s = scheduler();
        let data: Vec<u64> = (0..200_000).map(|i| i % 1000).collect();
        let expected: u64 = data.iter().sum();
        assert_eq!(
            team_reduce_with(&s, &data, 0, |a, b| a + b, 1024),
            expected
        );
        let m = s.metrics();
        assert!(m.teams_formed > 0, "large reductions must run as a team task");
        assert!(m.team_tasks_executed > 0);
    }

    #[test]
    fn min_max_on_large_input() {
        let s = scheduler();
        let data: Vec<u64> = (0..100_000).map(|i| (i * 2654435761u64) % 1_000_003).collect();
        assert_eq!(parallel_min(&s, &data), data.iter().copied().min());
        assert_eq!(parallel_max(&s, &data), data.iter().copied().max());
    }

    #[test]
    fn dot_product_matches_sequential_for_large_inputs() {
        let s = scheduler();
        let n = 120_000;
        let a: Vec<f64> = (0..n).map(|i| (i % 17) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.5).collect();
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = dot_product(&s, &a, &b);
        // Chunked summation reorders additions; allow a tiny relative error.
        let rel = (got - expected).abs() / expected.abs().max(1.0);
        assert!(rel < 1e-9, "got {got}, expected {expected}");
    }

    #[test]
    #[should_panic]
    fn dot_product_rejects_mismatched_lengths() {
        let s = scheduler();
        let _ = dot_product(&s, &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn works_on_a_single_threaded_scheduler() {
        let s = Scheduler::with_threads(1);
        let data: Vec<u64> = (0..50_000).collect();
        assert_eq!(parallel_sum(&s, &data), data.iter().sum::<u64>());
    }

    #[test]
    fn works_on_non_power_of_two_thread_counts() {
        let s = Scheduler::with_threads(3);
        let data: Vec<u64> = (0..150_000).map(|i| i % 7).collect();
        assert_eq!(
            team_reduce_with(&s, &data, 0, |a, b| a + b, 1024),
            data.iter().sum::<u64>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_sum_matches_sequential(data in proptest::collection::vec(0u64..1_000, 0..4_000)) {
            let s = Scheduler::with_threads(2);
            // Force small chunks so teams form even for modest inputs.
            let got = team_reduce_with(&s, &data, 0, |a, b| a + b, 64);
            prop_assert_eq!(got, data.iter().sum::<u64>());
        }

        #[test]
        fn prop_min_matches_sequential(data in proptest::collection::vec(any::<u64>(), 1..2_000)) {
            let s = Scheduler::with_threads(2);
            let got = team_reduce_with(&s, &data, u64::MAX, |a, b| a.min(b), 64);
            prop_assert_eq!(got, data.iter().copied().min().unwrap());
        }
    }
}
