//! Team-based data-parallel loop primitives: `for_each`, `map` and `fill`.
//!
//! These are the "parallel loop" building blocks a user would otherwise
//! express by chopping a range into chunks and spawning one `r = 1` task per
//! chunk.  On the team-building scheduler the whole loop is **one** team
//! task: the members are co-scheduled, each owns one contiguous chunk, and
//! the only coordination cost is the single registration CAS per member —
//! there is no per-chunk task allocation, no join tree, and the chunk
//! boundaries are derived deterministically from the team's local ids.
//!
//! All primitives fall back to plain sequential execution when the input is
//! too small to amortize team formation, so they are safe to call
//! unconditionally.

use teamsteal_core::{Scheduler, TaskContext};
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::team_size::{best_team_size, chunk_range};

/// Default minimum number of elements per team member before a loop is
/// executed by a team.
pub const MIN_ELEMENTS_PER_MEMBER: usize = 8 * 1024;

/// Applies `f` to every element of `data` in place, using one team task.
///
/// `f` is applied exactly once per element; the assignment of elements to
/// threads is deterministic (contiguous chunks in local-id order) but the
/// relative execution order across chunks is concurrent.
///
/// ```
/// use teamsteal_core::Scheduler;
/// use teamsteal_apps::foreach::team_for_each;
///
/// let scheduler = Scheduler::with_threads(2);
/// let mut values: Vec<u64> = (0..100_000).collect();
/// team_for_each(&scheduler, &mut values, |x| *x *= 2);
/// assert_eq!(values[17], 34);
/// ```
pub fn team_for_each<T, F>(scheduler: &Scheduler, data: &mut [T], f: F)
where
    T: Send + 'static,
    F: Fn(&mut T) + Send + Sync + 'static,
{
    team_for_each_with(scheduler, data, f, MIN_ELEMENTS_PER_MEMBER);
}

/// [`team_for_each`] with an explicit work-per-member threshold.
pub fn team_for_each_with<T, F>(scheduler: &Scheduler, data: &mut [T], f: F, min_per_member: usize)
where
    T: Send + 'static,
    F: Fn(&mut T) + Send + Sync + 'static,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let team = best_team_size(n, min_per_member, scheduler.num_threads());
    if team <= 1 {
        for x in data.iter_mut() {
            f(x);
        }
        return;
    }
    let base = SendMutPtr::from_slice(data);
    scheduler.run_team(team, move |ctx| {
        // SAFETY: members own disjoint chunks of a slice that outlives the
        // blocking run_team call.
        let chunk = member_chunk_mut(ctx, base, n);
        for x in chunk.iter_mut() {
            f(x);
        }
    });
}

/// Applies `f` to every index/element pair of `input` and writes the results
/// into a freshly allocated output vector, using one team task.
///
/// ```
/// use teamsteal_core::Scheduler;
/// use teamsteal_apps::foreach::team_map;
///
/// let scheduler = Scheduler::with_threads(2);
/// let input: Vec<u32> = (0..50_000).collect();
/// let squares = team_map(&scheduler, &input, |_, &x| x as u64 * x as u64);
/// assert_eq!(squares[300], 90_000);
/// ```
pub fn team_map<T, U, F>(scheduler: &Scheduler, input: &[T], f: F) -> Vec<U>
where
    T: Sync + 'static,
    U: Copy + Default + Send + 'static,
    F: Fn(usize, &T) -> U + Send + Sync + 'static,
{
    team_map_with(scheduler, input, f, MIN_ELEMENTS_PER_MEMBER)
}

/// [`team_map`] with an explicit work-per-member threshold.
pub fn team_map_with<T, U, F>(
    scheduler: &Scheduler,
    input: &[T],
    f: F,
    min_per_member: usize,
) -> Vec<U>
where
    T: Sync + 'static,
    U: Copy + Default + Send + 'static,
    F: Fn(usize, &T) -> U + Send + Sync + 'static,
{
    let n = input.len();
    let mut out = vec![U::default(); n];
    if n == 0 {
        return out;
    }
    let team = best_team_size(n, min_per_member, scheduler.num_threads());
    if team <= 1 {
        for (i, (o, x)) in out.iter_mut().zip(input).enumerate() {
            *o = f(i, x);
        }
        return out;
    }
    let src = SendConstPtr::from_slice(input);
    let dst = SendMutPtr::from_slice(&mut out);
    scheduler.run_team(team, move |ctx| {
        let members = ctx.team_size();
        let me = ctx.local_id();
        let range = chunk_range(n, members, me);
        // SAFETY: the input outlives the blocking call and is never mutated;
        // output chunks are disjoint per member.
        let input = unsafe { src.slice(n) };
        let out = unsafe { dst.add(range.start).slice_mut(range.len()) };
        for (offset, o) in out.iter_mut().enumerate() {
            let i = range.start + offset;
            *o = f(i, &input[i]);
        }
    });
    out
}

/// Fills `data` with `f(index)` using one team task (a parallel "iota" /
/// initializer).
pub fn team_fill_with<T, F>(scheduler: &Scheduler, data: &mut [T], f: F)
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let team = best_team_size(n, MIN_ELEMENTS_PER_MEMBER, scheduler.num_threads());
    if team <= 1 {
        for (i, x) in data.iter_mut().enumerate() {
            *x = f(i);
        }
        return;
    }
    let base = SendMutPtr::from_slice(data);
    scheduler.run_team(team, move |ctx| {
        let members = ctx.team_size();
        let me = ctx.local_id();
        let range = chunk_range(n, members, me);
        // SAFETY: disjoint chunks of a slice that outlives the blocking call.
        let out = unsafe { base.add(range.start).slice_mut(range.len()) };
        for (offset, x) in out.iter_mut().enumerate() {
            *x = f(range.start + offset);
        }
    });
}

/// The executing member's chunk of a shared `len`-element buffer, as a
/// mutable slice.  Chunks of different members are disjoint.
fn member_chunk_mut<'a, T>(ctx: &TaskContext<'_>, base: SendMutPtr<T>, len: usize) -> &'a mut [T] {
    let range = chunk_range(len, ctx.team_size(), ctx.local_id());
    // SAFETY: chunk_range partitions [0, len), so the slices handed to the
    // team members never overlap; the caller guarantees the buffer outlives
    // the team task.
    unsafe { base.add(range.start).slice_mut(range.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn for_each_small_and_empty_inputs() {
        let s = Scheduler::with_threads(2);
        let mut empty: Vec<u32> = vec![];
        team_for_each(&s, &mut empty, |x| *x += 1);
        assert!(empty.is_empty());

        let mut small: Vec<u32> = (0..100).collect();
        team_for_each(&s, &mut small, |x| *x += 1);
        assert!(small.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
        assert_eq!(s.metrics().teams_formed, 0, "tiny loops must stay sequential");
    }

    #[test]
    fn for_each_large_input_uses_a_team_and_touches_every_element_once() {
        let s = Scheduler::with_threads(4);
        let n = 150_000;
        let mut data: Vec<u64> = vec![0; n];
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        team_for_each_with(
            &s,
            &mut data,
            move |x| {
                *x += 1;
                c.fetch_add(1, Ordering::Relaxed);
            },
            1024,
        );
        assert!(data.iter().all(|&x| x == 1), "every element exactly once");
        assert_eq!(calls.load(Ordering::Relaxed), n as u64);
        assert!(s.metrics().teams_formed > 0);
    }

    #[test]
    fn map_matches_sequential_and_preserves_order() {
        let s = Scheduler::with_threads(4);
        let input: Vec<u32> = (0..120_000).map(|i| i % 97).collect();
        let got = team_map_with(&s, &input, |i, &x| (i as u64) * 3 + x as u64, 1024);
        for (i, (&x, &y)) in input.iter().zip(&got).enumerate() {
            assert_eq!(y, i as u64 * 3 + x as u64, "mismatch at {i}");
        }
    }

    #[test]
    fn fill_with_produces_the_requested_sequence() {
        let s = Scheduler::with_threads(3);
        let mut data = vec![0u64; 100_000];
        team_fill_with(&s, &mut data, |i| (i as u64).wrapping_mul(2654435761));
        assert!(data
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i as u64).wrapping_mul(2654435761)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_map_equals_sequential(input in proptest::collection::vec(any::<u32>(), 0..3_000)) {
            let s = Scheduler::with_threads(2);
            let got = team_map_with(&s, &input, |i, &x| x as u64 + i as u64, 64);
            let expected: Vec<u64> = input.iter().enumerate().map(|(i, &x)| x as u64 + i as u64).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_for_each_touches_each_element_once(len in 0usize..3_000) {
            let s = Scheduler::with_threads(2);
            let mut data = vec![0u8; len];
            team_for_each_with(&s, &mut data, |x| *x = x.wrapping_add(1), 64);
            prop_assert!(data.iter().all(|&x| x == 1));
        }
    }
}
