//! Scheduler micro-scenarios for the perf-trajectory harness.
//!
//! The application kernels measure end-to-end throughput, which buries the
//! scheduler's per-operation costs under user work.  The scenarios in this
//! module isolate exactly the hot paths the runtime optimizes:
//!
//! * [`spawn_overhead`] — a tight spawn/join loop of empty tasks: the cost of
//!   allocating a task node, pushing it through a deque, popping and
//!   executing it, and recycling the node.  This is the paper's "overhead in
//!   the degenerate case" measured directly.
//! * [`steal_latency`] — a single producer spawning short tasks while the
//!   remaining workers live entirely off steals: the cost of the steal path
//!   (partner scan, `popTop`, re-levelling).
//! * [`scope_inject`] — many small scopes, each submitting root tasks from
//!   outside the worker pool: the cost of the external injection queue and
//!   scope termination detection.
//! * [`injection_throughput`] — many concurrent submitter threads feeding
//!   one persistent scheduler: the aggregate capacity of the (sharded)
//!   external injection queue, in tasks per second, plus sampled
//!   submit-to-start latencies.  The direct measurement of the sharded
//!   injection path (DESIGN.md §13).
//! * [`soak`] — a bounded-memory probe: many root-task lifetimes with
//!   deque-growing spawn bursts, sampling the scheduler's retained
//!   injection-queue segments and deferred-reclamation backlog between
//!   scopes.  Its gauges (peak/final footprint) ride in the perf report's
//!   `extra` object; the reclaimed counts are ordinary scheduler metrics.
//! * [`wakeup_latency`] — external-submission wake latency: let every worker
//!   park, submit one root task, measure submit → execution-start.  The
//!   direct measurement of the parking subsystem's wake path (DESIGN.md
//!   §12); its samples *are* the latencies, so the report's `median_s` /
//!   `p95_s` read as seconds of wake latency.
//! * [`idle_burn`] — CPU time an otherwise idle scheduler burns per second
//!   of wall time.  Near-zero with event-driven parking; proportional to
//!   `p / poll-interval` under sleep-polling.
//! * [`team_build_streak`] / [`team_build_cold`] — team-build latency
//!   (submit → first team-member instruction) for back-to-back same-`r`
//!   team tasks vs the same tasks spaced past the warm keep-alive window:
//!   the direct measurement of the warm team-reuse pool (DESIGN.md §15).
//!   Like `wakeup_latency`, the samples *are* the latencies.
//! * [`team_build_mix`] — a bursty heterogeneous requirement mix (fixed-`r`
//!   streaks, moldable ranges, sequential riders) driving the moldable-`r`
//!   chooser, shrink-reuse and the reuse pool together; its scheduler
//!   counter deltas (`teams_built`, `team_reuses`, `team_shrinks`) tell how
//!   much registration traffic the pool amortized away.
//!
//! Every scenario validates its own execution count, so a scheduler that
//! drops or duplicates tasks can never report a good time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal_core::Scheduler;
use teamsteal_util::timing::time;

/// One timed spawn/join loop: a single root task spawns `spawns` empty child
/// tasks, and the call returns once the scope has drained them all.
///
/// With one worker thread this is a pure producer/consumer loop over the
/// worker's own deque — no steals, no teams — so the measured time is
/// dominated by per-spawn allocation and queue traffic.
///
/// # Panics
///
/// Panics if not exactly `spawns` children executed.
pub fn spawn_overhead(scheduler: &Scheduler, spawns: usize) -> Duration {
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    let (duration, ()) = time(|| {
        scheduler.scope(|scope| {
            let counter = Arc::clone(&counter);
            scope.spawn(move |ctx| {
                for _ in 0..spawns {
                    let counter = Arc::clone(&counter);
                    ctx.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        spawns,
        "spawn_overhead lost or duplicated tasks"
    );
    duration
}

/// Work performed by every task of the [`steal_latency`] probe, tuned so a
/// task is long enough to be worth stealing but short enough that steal-path
/// costs still dominate the measurement.
const STEAL_PROBE_SPIN: u64 = 64;

/// One timed single-producer run: worker-side code spawns `tasks` short
/// tasks from one root task while every other worker can only obtain work by
/// stealing.  The recorded scheduler-counter delta (steals, tasks stolen)
/// tells how much of the work actually moved.
///
/// # Panics
///
/// Panics if not exactly `tasks` tasks executed.
pub fn steal_latency(scheduler: &Scheduler, tasks: usize) -> Duration {
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    let (duration, ()) = time(|| {
        scheduler.scope(|scope| {
            let counter = Arc::clone(&counter);
            scope.spawn(move |ctx| {
                for _ in 0..tasks {
                    let counter = Arc::clone(&counter);
                    ctx.spawn(move |_| {
                        // A short, optimization-proof spin standing in for a
                        // fine-grained unit of user work.
                        let mut acc = 0u64;
                        for i in 0..STEAL_PROBE_SPIN {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                        }
                        std::hint::black_box(acc);
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        tasks,
        "steal_latency lost or duplicated tasks"
    );
    duration
}

/// One timed injection loop: `scopes` back-to-back scopes, each submitting
/// `per_scope` empty root tasks from the calling (non-worker) thread and
/// waiting for them.  This is the only scenario whose task traffic flows
/// through the external injection queue rather than worker-local deques.
///
/// # Panics
///
/// Panics if not exactly `scopes * per_scope` tasks executed.
pub fn scope_inject(scheduler: &Scheduler, scopes: usize, per_scope: usize) -> Duration {
    let executed = Arc::new(AtomicUsize::new(0));
    let (duration, ()) = time(|| {
        for _ in 0..scopes {
            scheduler.scope(|scope| {
                for _ in 0..per_scope {
                    let counter = Arc::clone(&executed);
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        scopes * per_scope,
        "scope_inject lost or duplicated tasks"
    );
    duration
}

/// Every how-many-th submission of one [`injection_throughput`] producer
/// records a submit-to-start latency sample.  Sampling (instead of timing
/// every task) keeps the measurement from turning into an `Instant::now`
/// benchmark while still yielding hundreds of samples per run.
pub const INJECTION_SAMPLE_EVERY: usize = 64;

/// Outcome of one [`injection_throughput`] run.
#[derive(Debug, Clone, Default)]
pub struct InjectionOutcome {
    /// Wall-clock time from the first submission to the last task draining.
    pub duration: Duration,
    /// Total root tasks submitted (and executed — the count is asserted).
    pub tasks: usize,
    /// Sampled submit-to-start latencies (every
    /// [`INJECTION_SAMPLE_EVERY`]-th submission per producer).
    pub submit_to_start: Vec<Duration>,
}

impl InjectionOutcome {
    /// Aggregate injection throughput over the timed region.
    pub fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.duration.as_secs_f64()
    }
}

/// One timed multi-producer injection run: `producers` submitter threads
/// each open one scope against the shared scheduler and submit
/// `per_producer` empty root tasks, all concurrently.  The timed region
/// covers every submission *and* the draining of every task, so the number
/// is end-to-end injection capacity, not just push throughput.  With a
/// sharded injector the producers spread over the shards (round-robin
/// affinity) instead of serializing on one head/tail cache-line pair.
///
/// # Panics
///
/// Panics if not exactly `producers * per_producer` tasks executed or a
/// sampled task never started.
pub fn injection_throughput(
    scheduler: &Scheduler,
    producers: usize,
    per_producer: usize,
) -> InjectionOutcome {
    let executed = Arc::new(AtomicUsize::new(0));
    let (duration, cells) = time(|| {
        std::thread::scope(|ts| {
            let handles: Vec<_> = (0..producers)
                .map(|_| {
                    let executed = Arc::clone(&executed);
                    ts.spawn(move || {
                        let mut cells: Vec<Arc<AtomicU64>> = Vec::new();
                        scheduler.scope(|scope| {
                            for k in 0..per_producer {
                                let counter = Arc::clone(&executed);
                                if k % INJECTION_SAMPLE_EVERY == 0 {
                                    let cell = Arc::new(AtomicU64::new(u64::MAX));
                                    let started = Arc::clone(&cell);
                                    let submit = Instant::now();
                                    scope.spawn(move |_| {
                                        started.store(
                                            submit.elapsed().as_nanos() as u64,
                                            Ordering::Relaxed,
                                        );
                                        counter.fetch_add(1, Ordering::Relaxed);
                                    });
                                    cells.push(cell);
                                } else {
                                    scope.spawn(move |_| {
                                        counter.fetch_add(1, Ordering::Relaxed);
                                    });
                                }
                            }
                        });
                        cells
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("producer thread panicked"))
                .collect::<Vec<_>>()
        })
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        producers * per_producer,
        "injection_throughput lost or duplicated tasks"
    );
    let submit_to_start = cells
        .iter()
        .map(|cell| {
            let ns = cell.load(Ordering::Relaxed);
            assert_ne!(ns, u64::MAX, "a sampled injection task never started");
            Duration::from_nanos(ns)
        })
        .collect();
    InjectionOutcome {
        duration,
        tasks: producers * per_producer,
        submit_to_start,
    }
}

/// Children spawned by every root task of the [`soak`] scenario.  Above the
/// deque's minimum capacity (32), so each burst exercises buffer growth at
/// least until the per-worker deques reach their high-water capacity.
pub const SOAK_BURST: usize = 48;

/// Memory-footprint gauges recorded by one [`soak`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakOutcome {
    /// Wall-clock time of the timed region.
    pub duration: Duration,
    /// Highest retained injection-segment count observed between scopes.
    pub peak_injector_segments: usize,
    /// Retained injection-segment count after the last scope drained.
    pub final_injector_segments: usize,
    /// Highest deferred-but-not-yet-freed object count observed.
    pub peak_deferred_items: usize,
}

/// One timed soak run: `scopes` back-to-back scopes, each injecting
/// `per_scope` root tasks that each spawn a [`SOAK_BURST`]-child burst —
/// i.e. many *root-task lifetimes*, the traffic pattern whose segments the
/// seed runtime used to retain forever.  Samples the reclamation gauges
/// ([`Scheduler::reclamation`]) between scopes; with healthy epoch
/// reclamation the peak stays bounded instead of growing with
/// `scopes * per_scope`.
///
/// # Panics
///
/// Panics if not exactly `scopes * per_scope * (SOAK_BURST + 1)` tasks
/// executed.
pub fn soak(scheduler: &Scheduler, scopes: usize, per_scope: usize) -> SoakOutcome {
    let executed = Arc::new(AtomicUsize::new(0));
    let mut outcome = SoakOutcome::default();
    let (duration, ()) = time(|| {
        for _ in 0..scopes {
            scheduler.scope(|scope| {
                for _ in 0..per_scope {
                    let counter = Arc::clone(&executed);
                    scope.spawn(move |ctx| {
                        for _ in 0..SOAK_BURST {
                            let counter = Arc::clone(&counter);
                            ctx.spawn(move |_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            let r = scheduler.reclamation();
            outcome.peak_injector_segments =
                outcome.peak_injector_segments.max(r.injector_segments);
            outcome.peak_deferred_items = outcome.peak_deferred_items.max(r.deferred_items);
        }
    });
    outcome.duration = duration;
    outcome.final_injector_segments = scheduler.reclamation().injector_segments;
    assert_eq!(
        executed.load(Ordering::Relaxed),
        scopes * per_scope * (SOAK_BURST + 1),
        "soak lost or duplicated tasks"
    );
    outcome
}

/// Pause between [`wakeup_latency`] submissions, long enough for every
/// worker to exhaust its spin/yield prefix and commit an eventcount park.
pub const WAKEUP_SETTLE: Duration = Duration::from_millis(2);

/// Measures external-submission wake latency: `submissions` times, let the
/// (empty) scheduler settle so its workers park, then submit one root task
/// and record the time from just before the submission to the task's first
/// instruction.  Returns one latency sample per submission.
///
/// The numbers include the submit path itself (node allocation, injector
/// push) on top of the park-to-wake time, which is exactly what an external
/// client of the scheduler experiences.
///
/// # Panics
///
/// Panics if any submission's task fails to execute.
pub fn wakeup_latency(scheduler: &Scheduler, submissions: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(submissions);
    for _ in 0..submissions {
        std::thread::sleep(WAKEUP_SETTLE);
        let started_ns = Arc::new(AtomicU64::new(u64::MAX));
        let cell = Arc::clone(&started_ns);
        let submit = Instant::now();
        scheduler.scope(|scope| {
            scope.spawn(move |_| {
                cell.store(submit.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        });
        let ns = started_ns.load(Ordering::Relaxed);
        assert_ne!(ns, u64::MAX, "wakeup_latency task never executed");
        samples.push(Duration::from_nanos(ns));
    }
    samples
}

/// Gap inserted before every [`team_build_cold`] submission: comfortably
/// past the default warm keep-alive window (200 µs), so every cold team
/// task finds the previous team disbanded and pays the full registration
/// protocol.
pub const TEAM_BUILD_COLD_GAP: Duration = Duration::from_millis(2);

/// Outcome of one team-build latency run ([`team_build_streak`] /
/// [`team_build_cold`]).
#[derive(Debug, Clone, Default)]
pub struct TeamBuildOutcome {
    /// Wall-clock time of the whole run (including any cold gaps).
    pub duration: Duration,
    /// Team tasks submitted (and executed — the count is asserted).
    pub tasks: usize,
    /// Submit-to-team-start latency of every task: time from just before the
    /// `run_team` submission to team member 0's first instruction.
    pub submit_to_start: Vec<Duration>,
}

/// `tasks` back-to-back `run_team(r, …)` submissions with no gap: after the
/// first build, each next task arrives inside the warm keep-alive window and
/// should reuse the still-formed team (one publication write instead of the
/// full registration protocol).  The per-task submit-to-start latencies are
/// returned so the warm fast path is measured directly.
///
/// # Panics
///
/// Panics if any team task fails to execute exactly once.
pub fn team_build_streak(scheduler: &Scheduler, r: usize, tasks: usize) -> TeamBuildOutcome {
    team_build_run(scheduler, r, tasks, None)
}

/// The cold-path control for [`team_build_streak`]: identical submissions,
/// but each preceded by a [`TEAM_BUILD_COLD_GAP`] pause so the warm window
/// has expired and every task rebuilds its team from scratch.  The gap is
/// outside the per-task latency samples (each sample starts at its own
/// submission), so `streak` vs `cold` sample medians compare the reuse fast
/// path against the full protocol on otherwise identical work.
///
/// # Panics
///
/// Panics if any team task fails to execute exactly once.
pub fn team_build_cold(scheduler: &Scheduler, r: usize, tasks: usize) -> TeamBuildOutcome {
    team_build_run(scheduler, r, tasks, Some(TEAM_BUILD_COLD_GAP))
}

fn team_build_run(
    scheduler: &Scheduler,
    r: usize,
    tasks: usize,
    gap: Option<Duration>,
) -> TeamBuildOutcome {
    let executed = Arc::new(AtomicUsize::new(0));
    let mut submit_to_start = Vec::with_capacity(tasks);
    let (duration, ()) = time(|| {
        for _ in 0..tasks {
            if let Some(gap) = gap {
                std::thread::sleep(gap);
            }
            let started_ns = Arc::new(AtomicU64::new(u64::MAX));
            let cell = Arc::clone(&started_ns);
            let counter = Arc::clone(&executed);
            let submit = Instant::now();
            scheduler.run_team(r, move |ctx| {
                if ctx.local_id() == 0 {
                    cell.store(submit.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                ctx.barrier();
            });
            let ns = started_ns.load(Ordering::Relaxed);
            assert_ne!(ns, u64::MAX, "a team_build task never started");
            submit_to_start.push(Duration::from_nanos(ns));
        }
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        tasks,
        "team_build lost or duplicated team tasks"
    );
    TeamBuildOutcome {
        duration,
        tasks,
        submit_to_start,
    }
}

/// Fixed-`r` team tasks per burst of the [`team_build_mix`] scenario.
pub const MIX_STREAK: usize = 4;

/// One timed heterogeneous-requirement run: a root task spawns `bursts`
/// bursts, each a streak of [`MIX_STREAK`] fixed-`r` team tasks, one
/// **moldable** `1..=r` task (the scheduler picks its effective size from
/// current load) and one sequential rider.  The pattern exercises the
/// moldable-`r` chooser, the shrink-reuse rule (§3.1) and the warm pool in
/// one scope; the caller reads the `teams_built` / `team_reuses` /
/// `team_shrinks` counter deltas for the reuse hit rate.
///
/// # Panics
///
/// Panics if not exactly `bursts * (MIX_STREAK + 2)` tasks executed.
pub fn team_build_mix(scheduler: &Scheduler, bursts: usize) -> Duration {
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    let (duration, ()) = time(|| {
        scheduler.scope(|scope| {
            let counter = Arc::clone(&counter);
            scope.spawn(move |ctx| {
                let wide = ctx.num_threads().min(4);
                for _ in 0..bursts {
                    for _ in 0..MIX_STREAK {
                        let c = Arc::clone(&counter);
                        ctx.spawn_team(wide, move |tc| {
                            if tc.local_id() == 0 {
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                            tc.barrier();
                        });
                    }
                    let c = Arc::clone(&counter);
                    ctx.spawn_team_moldable(1..=wide, move |tc| {
                        if tc.local_id() == 0 {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        tc.barrier();
                    });
                    let c = Arc::clone(&counter);
                    ctx.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        bursts * (MIX_STREAK + 2),
        "team_build_mix lost or duplicated tasks"
    );
    duration
}

/// Gauges recorded by one [`idle_burn`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdleBurnOutcome {
    /// Wall-clock time of the measured idle interval.
    pub wall: Duration,
    /// CPU time the whole process consumed over the interval, or `None`
    /// when the platform offers no cheap process-CPU clock (non-Linux).
    pub cpu: Option<Duration>,
}

/// Measures the CPU time an idle scheduler burns: run one trivial task
/// (so every worker is demonstrably alive), wait for the workers to park,
/// then sample process CPU time across `wall` of doing nothing.
///
/// CPU time is read from `/proc/self/task/*/schedstat` (nanosecond
/// granularity, covers every worker thread); on platforms without procfs
/// the outcome's `cpu` is `None` and the caller should report the scenario
/// as unavailable rather than as zero burn.
pub fn idle_burn(scheduler: &Scheduler, wall: Duration) -> IdleBurnOutcome {
    scheduler.run(|_| {});
    // Let the workers drain their spin prefixes and park.
    std::thread::sleep(WAKEUP_SETTLE * 4);
    let before = process_cpu_time();
    let start = Instant::now();
    std::thread::sleep(wall);
    let elapsed = start.elapsed();
    let cpu = match (before, process_cpu_time()) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };
    IdleBurnOutcome { wall: elapsed, cpu }
}

/// Total on-CPU time of every thread in this process, from
/// `/proc/self/task/*/schedstat` (field 1, nanoseconds).  `None` when the
/// interface is unavailable (non-Linux, restricted procfs).
pub fn process_cpu_time() -> Option<Duration> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut total_ns = 0u64;
    for task in tasks.flatten() {
        let Ok(schedstat) = std::fs::read_to_string(task.path().join("schedstat")) else {
            // A thread may exit between the readdir and the read; skip it.
            continue;
        };
        // A transiently empty/partial read (thread torn down mid-read) must
        // skip that thread, not poison the whole probe into `None`.
        let Some(on_cpu) = schedstat
            .split_whitespace()
            .next()
            .and_then(|field| field.parse::<u64>().ok())
        else {
            continue;
        };
        total_ns += on_cpu;
    }
    Some(Duration::from_nanos(total_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_overhead_runs_and_validates() {
        let scheduler = Scheduler::with_threads(1);
        let d = spawn_overhead(&scheduler, 10_000);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn steal_latency_moves_work_to_thieves() {
        let scheduler = Scheduler::with_threads(2);
        let before = scheduler.metrics();
        let d = steal_latency(&scheduler, 20_000);
        assert!(d > Duration::ZERO);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.total_executions(), 20_000 + 1);
        // On a single-CPU host the thief may rarely win the race for work,
        // so only the execution count is asserted unconditionally.
    }

    #[test]
    fn scope_inject_counts_every_root_task() {
        let scheduler = Scheduler::with_threads(2);
        let d = scope_inject(&scheduler, 50, 20);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn wakeup_latency_returns_one_sample_per_submission() {
        let scheduler = Scheduler::with_threads(2);
        let samples = wakeup_latency(&scheduler, 5);
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|&s| s > Duration::ZERO));
        // Wakes actually flowed through the parking subsystem.
        let m = scheduler.metrics();
        assert!(m.parks > 0, "workers never parked between submissions");
        assert!(m.wakeups > 0, "submissions never woke a parked worker");
    }

    #[test]
    fn idle_burn_measures_an_interval() {
        let scheduler = Scheduler::with_threads(2);
        let outcome = idle_burn(&scheduler, Duration::from_millis(50));
        assert!(outcome.wall >= Duration::from_millis(50));
        if let Some(cpu) = outcome.cpu {
            // Parked workers burn (almost) nothing; allow generous slack for
            // the test harness's own threads on a busy host.
            assert!(
                cpu < outcome.wall * 2,
                "idle scheduler burned {cpu:?} CPU over {:?} wall",
                outcome.wall
            );
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn process_cpu_time_is_monotone_on_linux() {
        let a = process_cpu_time().expect("procfs available on Linux");
        // Burn a little CPU so the clock visibly advances.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = process_cpu_time().expect("procfs available on Linux");
        assert!(b >= a);
    }

    #[test]
    fn injection_throughput_counts_and_samples() {
        let scheduler = Scheduler::with_threads(2);
        let before = scheduler.metrics();
        let outcome = injection_throughput(&scheduler, 8, 200);
        assert_eq!(outcome.tasks, 8 * 200);
        assert!(outcome.duration > Duration::ZERO);
        assert!(outcome.tasks_per_sec() > 0.0);
        // ceil(200 / 64) = 4 samples per producer.
        assert_eq!(outcome.submit_to_start.len(), 8 * 4);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.tasks_injected, 8 * 200);
        // Every injector pop is classified as local or remote, never both.
        assert_eq!(
            delta.injector_local_pops + delta.injector_remote_pops,
            delta.tasks_injected
        );
    }

    #[test]
    fn team_build_streak_reuses_the_warm_team() {
        let scheduler = Scheduler::with_threads(4);
        let before = scheduler.metrics();
        let outcome = team_build_streak(&scheduler, 4, 48);
        assert_eq!(outcome.tasks, 48);
        assert_eq!(outcome.submit_to_start.len(), 48);
        let delta = scheduler.metrics().delta_since(&before);
        // Every team publication is classified as a cold build or a warm
        // reuse, never both and never neither.
        assert_eq!(delta.teams_built + delta.team_reuses, 48);
        // Back-to-back same-r submissions land inside the keep-alive
        // window; over 48 of them some must hit the warm pool.
        assert!(
            delta.team_reuses > 0,
            "no warm reuse over 48 back-to-back team tasks"
        );
    }

    #[test]
    fn team_build_cold_pays_the_full_protocol() {
        let scheduler = Scheduler::with_threads(4);
        let before = scheduler.metrics();
        let outcome = team_build_cold(&scheduler, 4, 8);
        assert_eq!(outcome.submit_to_start.len(), 8);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.teams_built + delta.team_reuses, 8);
        // With every submission spaced past the keep-alive window, most
        // teams are rebuilt from scratch (a reuse would need the previous
        // team to outlive its window, which only extreme descheduling of
        // the coordinator can cause).
        assert!(
            delta.teams_built > 0,
            "cold-gap submissions never rebuilt a team"
        );
    }

    #[test]
    fn team_build_mix_amortizes_registration() {
        let scheduler = Scheduler::with_threads(4);
        let before = scheduler.metrics();
        let d = team_build_mix(&scheduler, 6);
        assert!(d > Duration::ZERO);
        let delta = scheduler.metrics().delta_since(&before);
        assert!(delta.teams_built >= 1);
        // The fixed-r streaks queue together, so after the first build the
        // remaining streak publications ride the formed team.
        assert!(
            delta.team_reuses as usize >= 6 * MIX_STREAK - 1,
            "only {} reuses over {} streak tasks",
            delta.team_reuses,
            6 * MIX_STREAK
        );
    }

    #[test]
    fn soak_reports_bounded_footprint() {
        let scheduler = Scheduler::with_threads(2);
        let outcome = soak(&scheduler, 40, 16);
        assert!(outcome.duration > Duration::ZERO);
        // 640 root tasks cross ten 64-slot segments; reclamation must keep
        // the retained chain far below that (a generous bound to stay
        // timing-insensitive — the exact gauge is asserted in the dedicated
        // reclamation integration tests).
        assert!(
            outcome.peak_injector_segments <= 8,
            "peak {} segments retained",
            outcome.peak_injector_segments
        );
        assert!(outcome.final_injector_segments >= 1);
    }
}
