//! Per-member scratch slots shared by a team.
//!
//! Most kernels in this crate follow the same SPMD pattern: every team member
//! writes a partial result into "its" slot, the team synchronizes at the
//! [`TaskContext::barrier`](teamsteal_core::TaskContext::barrier), and one or
//! all members read the other slots afterwards.  [`TeamSlots`] is the small
//! unsafe cell array that makes this pattern possible for arbitrary `Copy`
//! payloads (atomics would restrict the payload to integers); the barrier
//! provides the required happens-before edge, the index discipline provides
//! the absence of aliasing.

use std::cell::UnsafeCell;

/// A fixed-size array of scratch slots, one per (potential) team member.
///
/// # Safety contract
///
/// * Between two synchronization points (team barriers, or spawn/scope
///   completion), each slot index must be written by **at most one** thread.
/// * A slot written before a synchronization point may be read by any thread
///   after it.
/// * Reading a slot that is concurrently written is a data race and therefore
///   undefined behaviour — the `unsafe` on [`write`](TeamSlots::write) and
///   [`read`](TeamSlots::read) makes the caller responsible for the
///   discipline.
#[derive(Debug)]
pub struct TeamSlots<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: all cross-thread access goes through the documented write/read
// discipline; the type itself only stores plain data.
unsafe impl<T: Send> Send for TeamSlots<T> {}
unsafe impl<T: Send> Sync for TeamSlots<T> {}

impl<T: Copy> TeamSlots<T> {
    /// Creates `n` slots, all initialised to `init`.
    pub fn new(n: usize, init: T) -> Self {
        TeamSlots {
            slots: (0..n).map(|_| UnsafeCell::new(init)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// No other thread may access slot `index` concurrently (see the type
    /// documentation for the full discipline).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        // SAFETY: exclusive access to this slot is guaranteed by the caller.
        unsafe { *self.slots[index].get() = value };
    }

    /// Reads slot `index`.
    ///
    /// # Safety
    ///
    /// No other thread may write slot `index` concurrently, and any previous
    /// write must be ordered before this read by a synchronization point.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T {
        // SAFETY: absence of concurrent writers is guaranteed by the caller.
        unsafe { *self.slots[index].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_write_read_roundtrip() {
        let slots = TeamSlots::new(4, 0u64);
        assert_eq!(slots.len(), 4);
        assert!(!slots.is_empty());
        for i in 0..4 {
            // SAFETY: single-threaded test.
            unsafe { slots.write(i, (i * i) as u64) };
        }
        for i in 0..4 {
            // SAFETY: single-threaded test.
            assert_eq!(unsafe { slots.read(i) }, (i * i) as u64);
        }
    }

    #[test]
    fn disjoint_slots_across_threads() {
        let slots = Arc::new(TeamSlots::new(8, 0usize));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    // SAFETY: each thread writes only its own slot.
                    unsafe { slots.write(i, i + 100) };
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writer threads are joined (a synchronization point).
        for i in 0..8 {
            assert_eq!(unsafe { slots.read(i) }, i + 100);
        }
    }

    #[test]
    fn zero_slots_is_fine() {
        let slots: TeamSlots<u8> = TeamSlots::new(0, 0);
        assert!(slots.is_empty());
        assert_eq!(slots.len(), 0);
    }
}
