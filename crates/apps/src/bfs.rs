//! Level-synchronous breadth-first search with team-parallel frontier
//! expansion.
//!
//! BFS alternates between two very different regimes: the first and last few
//! levels have tiny frontiers (best handled sequentially or by a single
//! `r = 1` task), while the middle levels have frontiers of thousands of
//! vertices that want data-parallel expansion.  That is exactly the
//! mixed-mode shape the scheduler is built for: [`bfs_mixed`] turns every
//! sufficiently large level into **one** team task whose members expand
//! disjoint chunks of the frontier, and keeps small levels on the calling
//! path.  Discovered vertices are claimed with a CAS on the distance array,
//! so every vertex enters the next frontier exactly once.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use teamsteal_core::Scheduler;
use teamsteal_util::SendConstPtr;

use crate::team_size::{best_team_size, chunk_range};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v + 1]` indexes the targets of vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph with `num_vertices` vertices from an edge list.
    /// Duplicate edges are kept; self loops are allowed.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in edges {
            assert!((u as usize) < num_vertices, "edge source {u} out of range");
            assert!((v as usize) < num_vertices, "edge target {v} out of range");
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let slot = cursor[u as usize];
            targets[slot] = v;
            cursor[u as usize] += 1;
        }
        CsrGraph { offsets, targets }
    }

    /// An undirected (symmetric) graph from an edge list: every edge is
    /// inserted in both directions.
    pub fn undirected_from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            sym.push((u, v));
            sym.push((v, u));
        }
        Self::from_edges(num_vertices, &sym)
    }

    /// A `width × height` 4-neighbour grid graph (undirected), vertex
    /// `(x, y)` has index `y * width + x`.
    pub fn grid(width: usize, height: usize) -> Self {
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let v = (y * width + x) as u32;
                if x + 1 < width {
                    edges.push((v, v + 1));
                }
                if y + 1 < height {
                    edges.push((v, v + width as u32));
                }
            }
        }
        Self::undirected_from_edges(width * height, &edges)
    }

    /// A pseudo-random graph with `num_vertices` vertices and approximately
    /// `avg_degree` outgoing edges per vertex (directed), deterministic in
    /// `seed`.
    pub fn random(num_vertices: usize, avg_degree: usize, seed: u64) -> Self {
        let mut rng = teamsteal_util::rng::Xoshiro256::new(seed);
        let mut edges = Vec::with_capacity(num_vertices * avg_degree);
        for u in 0..num_vertices as u32 {
            for _ in 0..avg_degree {
                let v = rng.next_usize_below(num_vertices.max(1)) as u32;
                edges.push((u, v));
            }
        }
        Self::from_edges(num_vertices, &edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The out-neighbours of `v`.
    #[inline]
    pub fn neighbours(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }
}

/// Sequential reference BFS returning the distance (in edges) from `source`
/// to every vertex, [`UNREACHABLE`] where no path exists.
pub fn bfs_sequential(graph: &CsrGraph, source: u32) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    if n == 0 {
        return dist;
    }
    assert!((source as usize) < n, "source vertex out of range");
    let mut frontier = vec![source];
    dist[source as usize] = 0;
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in graph.neighbours(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Minimum number of frontier edges per team member before a level is
/// expanded by a team task.
pub const MIN_EDGES_PER_MEMBER: usize = 4 * 1024;

/// Mixed-mode level-synchronous BFS (see the module documentation).
pub fn bfs_mixed(scheduler: &Scheduler, graph: &CsrGraph, source: u32) -> Vec<u32> {
    bfs_mixed_with(scheduler, graph, source, MIN_EDGES_PER_MEMBER)
}

/// [`bfs_mixed`] with an explicit work-per-member threshold.
pub fn bfs_mixed_with(
    scheduler: &Scheduler,
    graph: &CsrGraph,
    source: u32,
    min_edges_per_member: usize,
) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    assert!((source as usize) < n, "source vertex out of range");
    let p = scheduler.num_threads();

    // Shared distance array, claimed by CAS so each vertex is discovered once.
    let dist: Arc<Vec<AtomicU32>> = Arc::new((0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect());
    dist[source as usize].store(0, Ordering::Relaxed);

    // The graph is borrowed; team tasks need 'static closures, so hand the
    // CSR arrays over as raw pointers (they outlive every blocking scope).
    let offsets = SendConstPtr::from_slice(&graph.offsets);
    let targets = SendConstPtr::from_slice(&graph.targets);
    let offsets_len = graph.offsets.len();
    let targets_len = graph.targets.len();

    let mut frontier: Vec<u32> = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        // Work estimate for this level: the number of edges leaving the
        // frontier (the quantity that actually determines expansion cost).
        let edges: usize = frontier.iter().map(|&v| graph.degree(v)).sum();
        let team = best_team_size(edges.max(frontier.len()), min_edges_per_member, p);
        if team <= 1 {
            // Small level: expand on the calling thread.
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in graph.neighbours(u) {
                    if dist[v as usize]
                        .compare_exchange(UNREACHABLE, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        next.push(v);
                    }
                }
            }
            frontier = next;
            continue;
        }

        // Large level: one team task over the frontier.  Every member
        // appends its discoveries to a private buffer; the buffers are
        // concatenated afterwards.
        let frontier_arc: Arc<Vec<u32>> = Arc::new(std::mem::take(&mut frontier));
        let buckets: Arc<Vec<Mutex<Vec<u32>>>> =
            Arc::new((0..p).map(|_| Mutex::new(Vec::new())).collect());
        {
            let dist = Arc::clone(&dist);
            let frontier_arc = Arc::clone(&frontier_arc);
            let buckets = Arc::clone(&buckets);
            scheduler.run_team(team, move |ctx| {
                let members = ctx.team_size();
                let me = ctx.local_id();
                // SAFETY: the CSR arrays outlive the blocking run_team call
                // and are never mutated.
                let offsets = unsafe { offsets.slice(offsets_len) };
                let targets = unsafe { targets.slice(targets_len) };
                let my_vertices = chunk_range(frontier_arc.len(), members, me);
                let mut local = Vec::new();
                for &u in &frontier_arc[my_vertices] {
                    let adj = &targets[offsets[u as usize]..offsets[u as usize + 1]];
                    for &v in adj {
                        if dist[v as usize]
                            .compare_exchange(
                                UNREACHABLE,
                                level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            local.push(v);
                        }
                    }
                }
                *buckets[me].lock().expect("frontier bucket poisoned") = local;
            });
        }
        let mut next = Vec::new();
        for bucket in buckets.iter() {
            next.append(&mut bucket.lock().expect("frontier bucket poisoned"));
        }
        frontier = next;
    }

    dist.iter().map(|d| d.load(Ordering::Relaxed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn csr_construction_and_accessors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(3), &[] as &[u32]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_is_rejected() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn sequential_bfs_on_a_path() {
        let g = CsrGraph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bfs_sequential(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_sequential(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = bfs_sequential(&g, 0);
        assert_eq!(d, vec![0, 1, UNREACHABLE, UNREACHABLE]);
        let s = Scheduler::with_threads(2);
        assert_eq!(bfs_mixed(&s, &g, 0), d);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(bfs_sequential(&g, 0).is_empty());
        let s = Scheduler::with_threads(2);
        assert!(bfs_mixed(&s, &g, 0).is_empty());
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = CsrGraph::grid(8, 5);
        let d = bfs_sequential(&g, 0);
        for y in 0..5 {
            for x in 0..8 {
                assert_eq!(d[y * 8 + x], (x + y) as u32, "wrong distance at ({x},{y})");
            }
        }
    }

    #[test]
    fn mixed_matches_sequential_on_grid_with_teams() {
        let s = Scheduler::with_threads(4);
        let g = CsrGraph::grid(300, 200);
        let reference = bfs_sequential(&g, 0);
        let got = bfs_mixed_with(&s, &g, 0, 128);
        assert_eq!(got, reference);
        assert!(
            s.metrics().teams_formed > 0,
            "wide middle levels must be expanded by team tasks"
        );
    }

    #[test]
    fn mixed_matches_sequential_on_random_graph() {
        let s = Scheduler::with_threads(4);
        let g = CsrGraph::random(20_000, 8, 77);
        for source in [0u32, 17, 9999] {
            assert_eq!(bfs_mixed_with(&s, &g, source, 256), bfs_sequential(&g, source));
        }
    }

    #[test]
    fn non_power_of_two_threads() {
        let s = Scheduler::with_threads(3);
        let g = CsrGraph::grid(150, 150);
        assert_eq!(bfs_mixed_with(&s, &g, 42, 128), bfs_sequential(&g, 42));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_mixed_matches_sequential_on_random_graphs(
            n in 1usize..400,
            avg_degree in 0usize..6,
            seed in any::<u64>(),
            source_pick in any::<u32>(),
        ) {
            let g = CsrGraph::random(n, avg_degree, seed);
            let source = source_pick % n as u32;
            let s = Scheduler::with_threads(2);
            let got = bfs_mixed_with(&s, &g, source, 32);
            prop_assert_eq!(got, bfs_sequential(&g, source));
        }
    }
}
