//! Team-size policy shared by all application kernels.
//!
//! The paper's Quicksort chooses the number of threads for its data-parallel
//! partitioning step with `getBestNp(n)`: "the biggest power of two, where
//! each thread can process at least 128 blocks on average" (Section 5),
//! clamped to the machine size.  The kernels in this crate follow the same
//! shape — the unit of work differs per kernel (elements, rows, frontier
//! vertices) but the policy is identical — so it lives here once.

use teamsteal_util::bits::prev_pow2;

/// Largest power-of-two team size such that each member still receives at
/// least `min_work_per_member` units of the `total_work`, clamped to
/// `num_threads`.  Returns 1 when a team is not worth its formation overhead,
/// in which case callers fall back to sequential execution or `r = 1` task
/// parallelism.
///
/// The paper restricts Quicksort team sizes to powers of two "to achieve
/// better balancing"; the same restriction is applied here.  (The scheduler
/// itself also accepts non power-of-two requirements via Refinement 2, at
/// the cost of weaker utilization guarantees.)
///
/// ```
/// use teamsteal_apps::best_team_size;
///
/// // 1M units, at least 64k per member, on a 16-thread machine.
/// assert_eq!(best_team_size(1 << 20, 1 << 16, 16), 16);
/// // Too little work for even two members: stay sequential.
/// assert_eq!(best_team_size(1000, 4096, 16), 1);
/// // Clamped to the machine size and rounded down to a power of two.
/// assert_eq!(best_team_size(1 << 30, 1, 6), 4);
/// ```
pub fn best_team_size(total_work: usize, min_work_per_member: usize, num_threads: usize) -> usize {
    if num_threads <= 1 || total_work == 0 {
        return 1;
    }
    let by_work = total_work / min_work_per_member.max(1);
    let cap = by_work.min(num_threads);
    if cap <= 1 {
        1
    } else {
        prev_pow2(cap)
    }
}

/// Splits `len` work units into `parts` contiguous chunks that differ in size
/// by at most one and returns the half-open range of chunk `index`.
///
/// Every kernel in this crate distributes its data this way, so members of a
/// team own disjoint, cache-friendly contiguous ranges.
///
/// ```
/// use teamsteal_apps::team_size::chunk_range;
///
/// assert_eq!(chunk_range(10, 4, 0), 0..3);
/// assert_eq!(chunk_range(10, 4, 1), 3..6);
/// assert_eq!(chunk_range(10, 4, 2), 6..8);
/// assert_eq!(chunk_range(10, 4, 3), 8..10);
/// ```
pub fn chunk_range(len: usize, parts: usize, index: usize) -> std::ops::Range<usize> {
    assert!(parts > 0, "cannot split into zero chunks");
    assert!(index < parts, "chunk index {index} out of range for {parts} chunks");
    let base = len / parts;
    let extra = len % parts;
    let start = index * base + index.min(extra);
    let this = base + usize::from(index < extra);
    start..start + this
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn best_team_size_basic_policy() {
        assert_eq!(best_team_size(0, 1, 8), 1);
        assert_eq!(best_team_size(100, 1, 1), 1);
        assert_eq!(best_team_size(1 << 20, 1 << 10, 8), 8);
        assert_eq!(best_team_size(1 << 12, 1 << 10, 8), 4);
        assert_eq!(best_team_size(1 << 11, 1 << 10, 8), 2);
        assert_eq!(best_team_size(1 << 10, 1 << 10, 8), 1);
        // Non power-of-two machine sizes are rounded down.
        assert_eq!(best_team_size(1 << 20, 1, 12), 8);
        assert_eq!(best_team_size(1 << 20, 1, 3), 2);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 7, 64, 1000, 1023] {
            for parts in [1usize, 2, 3, 4, 7, 8] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..parts {
                    let r = chunk_range(len, parts, i);
                    assert_eq!(r.start, prev_end, "chunks must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_team_size_is_power_of_two_and_bounded(
            total in 0usize..1_000_000,
            per in 1usize..10_000,
            threads in 1usize..256,
        ) {
            let r = best_team_size(total, per, threads);
            prop_assert!(r >= 1);
            prop_assert!(r <= threads);
            prop_assert!(r.is_power_of_two());
            // If a team was chosen, every member has at least `per` work.
            if r > 1 {
                prop_assert!(total / r >= per);
            }
        }

        #[test]
        fn prop_chunks_partition_and_balance(
            len in 0usize..100_000,
            parts in 1usize..64,
        ) {
            let mut total = 0usize;
            let mut sizes = Vec::new();
            let mut prev_end = 0usize;
            for i in 0..parts {
                let r = chunk_range(len, parts, i);
                prop_assert_eq!(r.start, prev_end);
                prev_end = r.end;
                total += r.len();
                sizes.push(r.len());
            }
            prop_assert_eq!(total, len);
            prop_assert_eq!(prev_end, len);
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "chunk sizes must differ by at most one");
        }
    }
}
