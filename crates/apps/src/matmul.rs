//! Mixed-mode dense matrix multiplication.
//!
//! Matrix multiplication is the classic example used by the mixed-parallelism
//! literature the paper builds on (Chakrabarti et al.; Desprez & Suter's
//! Strassen study): the outer structure is task-parallel — independent output
//! blocks can be computed concurrently — while each block computation is
//! itself a data-parallel kernel that benefits from being executed by several
//! co-scheduled threads sharing the operand panels.
//!
//! [`matmul_mixed`] mirrors that structure on the `teamsteal` scheduler:
//!
//! * the output matrix is cut into row bands; each band is one spawned task,
//! * a band whose work volume is large enough becomes a **team task** whose
//!   members compute disjoint row stripes of the band (one CAS each to join,
//!   no further synchronization — members never write the same cache line),
//! * small bands fall back to `r = 1` tasks, so the degenerate case is plain
//!   task-parallel blocked matmul.


use teamsteal_core::Scheduler;
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::team_size::{best_team_size, chunk_range};

/// A dense, row-major, `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "element count must match the shape");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose element `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Sets element `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// Row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The raw row-major element slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Maximum absolute element-wise difference to another matrix of the same
    /// shape (used by tests to compare against the sequential reference).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Computes one row `i` of `C = A · B` into `c_row` (the cache-friendly
/// "ikj" loop order: stream over a row of B for every element of A's row).
fn multiply_row(a_row: &[f64], b: &[f64], b_cols: usize, c_row: &mut [f64]) {
    c_row.fill(0.0);
    for (k, &aik) in a_row.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[k * b_cols..(k + 1) * b_cols];
        for (c, &bkj) in c_row.iter_mut().zip(b_row) {
            *c += aik * bkj;
        }
    }
}

/// Sequential reference: `A · B` with the ikj loop order.
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn matmul_sequential(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must match");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        let row = &mut c.data[i * b.cols..(i + 1) * b.cols];
        multiply_row(a.row(i), &b.data, b.cols, row);
    }
    c
}

/// Work-volume threshold (in multiply-add operations) above which a row band
/// is executed by a team instead of a single task.
pub const MIN_FLOPS_PER_MEMBER: usize = 1 << 21;

/// Rows per spawned band task.
const BAND_ROWS: usize = 64;

/// Mixed-mode parallel `A · B` on the given scheduler.
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn matmul_mixed(scheduler: &Scheduler, a: &Matrix, b: &Matrix) -> Matrix {
    matmul_mixed_with(scheduler, a, b, MIN_FLOPS_PER_MEMBER)
}

/// [`matmul_mixed`] with an explicit flops-per-member threshold (exposed for
/// the benchmark harness's team-size ablation).
pub fn matmul_mixed_with(
    scheduler: &Scheduler,
    a: &Matrix,
    b: &Matrix,
    min_flops_per_member: usize,
) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must match");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return c;
    }
    if k == 0 {
        return c; // already all zeros
    }
    let p = scheduler.num_threads();

    let pa = SendConstPtr::from_slice(&a.data);
    let pb = SendConstPtr::from_slice(&b.data);
    let pc = SendMutPtr::from_slice(&mut c.data);
    let a_len = a.data.len();
    let b_len = b.data.len();

    scheduler.scope(|scope| {
        let mut row = 0;
        while row < m {
            let band_rows = BAND_ROWS.min(m - row);
            let flops = band_rows * n * k;
            let team = best_team_size(flops, min_flops_per_member, p);
            let band_start = row;
            if team <= 1 {
                scope.spawn(move |_ctx| {
                    // SAFETY: operands outlive the scope and are read-only;
                    // this task owns rows [band_start, band_start+band_rows).
                    let a = unsafe { pa.slice(a_len) };
                    let b = unsafe { pb.slice(b_len) };
                    for i in band_start..band_start + band_rows {
                        let c_row = unsafe { pc.add(i * n).slice_mut(n) };
                        multiply_row(&a[i * k..(i + 1) * k], b, n, c_row);
                    }
                });
            } else {
                scope.spawn_team(team, move |ctx| {
                    let members = ctx.team_size();
                    let me = ctx.local_id();
                    let my_rows = chunk_range(band_rows, members, me);
                    // SAFETY: operands outlive the scope and are read-only;
                    // team members own disjoint row stripes of the band.
                    let a = unsafe { pa.slice(a_len) };
                    let b = unsafe { pb.slice(b_len) };
                    for i in band_start + my_rows.start..band_start + my_rows.end {
                        let c_row = unsafe { pc.add(i * n).slice_mut(n) };
                        multiply_row(&a[i * k..(i + 1) * k], b, n, c_row);
                    }
                });
            }
            row += band_rows;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teamsteal_util::rng::Xoshiro256;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_f64() * 2.0 - 1.0)
    }

    #[test]
    fn shape_accessors_and_identity() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.rows(), 3);
        assert_eq!(i3.cols(), 3);
        assert_eq!(i3.get(1, 1), 1.0);
        assert_eq!(i3.get(0, 2), 0.0);
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul_sequential(&a, &b);
    }

    #[test]
    fn identity_is_neutral() {
        let s = Scheduler::with_threads(2);
        let a = random_matrix(17, 17, 1);
        let c = matmul_mixed(&s, &a, &Matrix::identity(17));
        assert!(c.max_abs_diff(&a) < 1e-12);
        let c = matmul_mixed(&s, &Matrix::identity(17), &a);
        assert!(c.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let s = Scheduler::with_threads(2);
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = matmul_mixed(&s, &a, &b);
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 3);

        // Zero inner dimension: result is all zeros.
        let a = random_matrix(4, 0, 3);
        let b = Matrix::zeros(0, 4);
        let c = matmul_mixed(&s, &a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mixed_matches_sequential_rectangular() {
        let s = Scheduler::with_threads(4);
        let a = random_matrix(83, 47, 7);
        let b = random_matrix(47, 61, 8);
        let reference = matmul_sequential(&a, &b);
        let c = matmul_mixed(&s, &a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn team_path_is_exercised_and_matches() {
        let s = Scheduler::with_threads(4);
        let a = random_matrix(256, 96, 9);
        let b = random_matrix(96, 128, 10);
        let reference = matmul_sequential(&a, &b);
        // Force a low threshold so bands become team tasks.
        let c = matmul_mixed_with(&s, &a, &b, 1 << 12);
        assert!(c.max_abs_diff(&reference) < 1e-9);
        assert!(s.metrics().teams_formed > 0, "bands must run as team tasks");
    }

    #[test]
    fn non_power_of_two_threads() {
        let s = Scheduler::with_threads(3);
        let a = random_matrix(130, 70, 11);
        let b = random_matrix(70, 90, 12);
        let reference = matmul_sequential(&a, &b);
        let c = matmul_mixed_with(&s, &a, &b, 1 << 12);
        assert!(c.max_abs_diff(&reference) < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_mixed_matches_sequential(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            seed in any::<u64>(),
        ) {
            let s = Scheduler::with_threads(2);
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed ^ 0xABCD);
            let reference = matmul_sequential(&a, &b);
            let c = matmul_mixed_with(&s, &a, &b, 1 << 10);
            prop_assert!(c.max_abs_diff(&reference) < 1e-9);
        }
    }
}
