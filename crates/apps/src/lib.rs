//! Mixed-mode parallel application kernels on the `teamsteal` scheduler.
//!
//! The paper evaluates the team-building work-stealer on a single
//! application — the mixed-mode parallel Quicksort of Section 5 — and lists
//! "further mixed-mode parallel applications" as future work.  This crate
//! provides that follow-up: a collection of kernels that mix task parallelism
//! (`r = 1` tasks scheduled by classic work-stealing) with data-parallel team
//! tasks (`r > 1`), exercising every part of the scheduler's public API:
//!
//! | module | kernel | how it mixes modes |
//! |---|---|---|
//! | [`foreach`] | data-parallel loops (`for_each`, `map`, `fill`) | one team task per loop; members own contiguous chunks, no per-chunk task allocation or join tree |
//! | [`reduce`] | reductions (sum, min/max, dot product) | one team task; members reduce disjoint chunks, the leader combines partials after a barrier |
//! | [`scan`] | prefix sums (inclusive / exclusive) | classic three-phase team scan: local scan, leader scans the block sums, members add their offset |
//! | [`merge`] | mixed-mode merge sort | top recursion levels merge with co-rank-partitioned team merges, lower levels fall back to fork-join sorting of independent halves |
//! | [`matmul`] | blocked matrix multiplication | recursive task-parallel block decomposition; large blocks become team tasks whose members own row stripes |
//! | [`stencil`] | 1-D Jacobi / heat diffusion | every sweep is one data-parallel team task; the team is reused sweep after sweep, which is exactly the team-reuse property of Section 3.1 |
//! | [`bfs`] | level-synchronous breadth-first search | every level expansion is a team task over the current frontier; tiny frontiers are processed by `r = 1` tasks instead |
//! | [`spmv`] | sparse matrix–vector multiplication and power iteration | one team task with nnz-balanced row ownership; the power iteration reuses the team every step |
//! | [`histogram`] | histogramming / bucket counting | members build private histograms of disjoint input chunks and merge ranges of buckets after a barrier |
//!
//! The [`harness`] module wraps the kernels behind uniform prepare /
//! timed-run signatures for the perf-trajectory harness (`teamsteal-bench`,
//! `perf` bin).
//!
//! All kernels take an explicit [`Scheduler`](teamsteal_core::Scheduler)
//! reference, never create their own thread pools, and choose their team
//! sizes with the same "largest power of two that keeps enough work per
//! member" policy the paper's `getBestNp` uses for Quicksort.
//!
//! # Example
//!
//! ```
//! use teamsteal_core::Scheduler;
//! use teamsteal_apps::reduce::parallel_sum;
//!
//! let scheduler = Scheduler::with_threads(4);
//! let data: Vec<u64> = (1..=10_000).collect();
//! let total = parallel_sum(&scheduler, &data);
//! assert_eq!(total, 10_000 * 10_001 / 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bfs;
pub mod foreach;
pub mod harness;
pub mod histogram;
pub mod matmul;
pub mod merge;
pub mod micro;
pub mod reduce;
pub mod scan;
pub mod slots;
pub mod spmv;
pub mod stencil;
pub mod team_size;

pub use bfs::{bfs_mixed, bfs_sequential, CsrGraph};
pub use foreach::{team_fill_with, team_for_each, team_map};
pub use harness::{Kernel, Workload};
pub use histogram::{histogram_mixed, histogram_sequential};
pub use matmul::{matmul_mixed, matmul_sequential, Matrix};
pub use merge::{merge_sort_mixed, team_merge};
pub use reduce::{dot_product, parallel_max, parallel_min, parallel_sum, team_reduce};
pub use scan::{exclusive_scan_mixed, inclusive_scan_mixed};
pub use slots::TeamSlots;
pub use spmv::{power_iteration_mixed, spmv_mixed, spmv_sequential, CsrMatrix};
pub use stencil::{jacobi_mixed, jacobi_sequential, StencilConfig};
pub use team_size::best_team_size;
