//! Team-parallel histogramming.
//!
//! Histogramming a large array is a reduction with vector-valued partials:
//! every team member counts its chunk of the input into a private histogram,
//! and after one barrier the members cooperatively combine the private
//! histograms — member `i` sums bucket range `i` across all privates — so
//! both phases are data parallel and the only synchronization is the single
//! team barrier.  This is the "per-thread privatization + tree/strided merge"
//! pattern every shared-memory histogram uses, expressed as one team task.

use std::sync::{Arc, Mutex};

use teamsteal_core::Scheduler;
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::team_size::{best_team_size, chunk_range};

/// Minimum number of input elements per team member before a team histogram
/// pays off.
pub const MIN_ELEMENTS_PER_MEMBER: usize = 16 * 1024;

/// Sequential reference: counts `data` into `num_buckets` equal-width buckets
/// over the full `u32` value range.
pub fn histogram_sequential(data: &[u32], num_buckets: usize) -> Vec<u64> {
    assert!(num_buckets > 0, "need at least one bucket");
    let mut counts = vec![0u64; num_buckets];
    for &x in data {
        counts[bucket_of(x, num_buckets)] += 1;
    }
    counts
}

/// The bucket index of value `x` for `num_buckets` equal-width buckets over
/// the full `u32` range.
#[inline]
pub fn bucket_of(x: u32, num_buckets: usize) -> usize {
    ((x as u64 * num_buckets as u64) >> 32) as usize
}

/// Mixed-mode histogram: one team task with privatized counting and a
/// cooperative merge (see the module documentation).  Falls back to the
/// sequential implementation for small inputs.
pub fn histogram_mixed(scheduler: &Scheduler, data: &[u32], num_buckets: usize) -> Vec<u64> {
    histogram_mixed_with(scheduler, data, num_buckets, MIN_ELEMENTS_PER_MEMBER)
}

/// [`histogram_mixed`] with an explicit work-per-member threshold.
pub fn histogram_mixed_with(
    scheduler: &Scheduler,
    data: &[u32],
    num_buckets: usize,
    min_per_member: usize,
) -> Vec<u64> {
    assert!(num_buckets > 0, "need at least one bucket");
    let n = data.len();
    let p = scheduler.num_threads();
    let team = best_team_size(n, min_per_member, p);
    if team <= 1 {
        return histogram_sequential(data, num_buckets);
    }

    let input = SendConstPtr::from_slice(data);
    let mut out = vec![0u64; num_buckets];
    let out_ptr = SendMutPtr::from_slice(&mut out);
    // Private histograms, one per potential team member.  A Mutex per slot
    // keeps the sharing safe and is uncontended: each member locks only its
    // own slot in phase 1 and a disjoint set of reads in phase 2 happens
    // after the barrier.
    let privates: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new((0..p).map(|_| Mutex::new(Vec::new())).collect());

    {
        let privates = Arc::clone(&privates);
        scheduler.run_team(team, move |ctx| {
            let members = ctx.team_size();
            let me = ctx.local_id();
            // SAFETY: the input outlives the blocking run_team call and is
            // never mutated.
            let data = unsafe { input.slice(n) };

            // Phase 1: count the member's chunk into a private histogram.
            let my_input = chunk_range(n, members, me);
            let mut local = vec![0u64; num_buckets];
            for &x in &data[my_input] {
                local[bucket_of(x, num_buckets)] += 1;
            }
            *privates[me].lock().expect("private histogram poisoned") = local;

            // Phase 2: after the barrier, member i owns bucket range i and
            // sums it across all private histograms into the output.
            ctx.barrier();
            let my_buckets = chunk_range(num_buckets, members, me);
            if my_buckets.is_empty() {
                return;
            }
            // SAFETY: bucket ranges are disjoint across members and the
            // output buffer outlives the blocking call.
            let my_out = unsafe { out_ptr.add(my_buckets.start).slice_mut(my_buckets.len()) };
            for other in 0..members {
                let private = privates[other].lock().expect("private histogram poisoned");
                if private.is_empty() {
                    continue;
                }
                for (dst, src) in my_out.iter_mut().zip(&private[my_buckets.clone()]) {
                    *dst += src;
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teamsteal_data::Distribution;

    #[test]
    fn bucket_of_covers_the_full_range() {
        assert_eq!(bucket_of(0, 16), 0);
        assert_eq!(bucket_of(u32::MAX, 16), 15);
        assert_eq!(bucket_of(u32::MAX / 2, 2), 0);
        assert_eq!(bucket_of(u32::MAX / 2 + 1, 2), 1);
        // Single bucket swallows everything.
        assert_eq!(bucket_of(u32::MAX, 1), 0);
    }

    #[test]
    #[should_panic]
    fn zero_buckets_rejected() {
        let _ = histogram_sequential(&[1, 2, 3], 0);
    }

    #[test]
    fn empty_input_gives_empty_counts() {
        let s = Scheduler::with_threads(2);
        assert_eq!(histogram_mixed(&s, &[], 8), vec![0u64; 8]);
    }

    #[test]
    fn counts_sum_to_input_length_and_match_sequential() {
        let s = Scheduler::with_threads(4);
        for d in Distribution::ALL {
            let data = d.generate(150_000, 4, 5);
            let got = histogram_mixed_with(&s, &data, 64, 1024);
            let reference = histogram_sequential(&data, 64);
            assert_eq!(got, reference, "{d:?} histogram mismatch");
            assert_eq!(got.iter().sum::<u64>(), data.len() as u64);
        }
        assert!(s.metrics().teams_formed > 0, "large histograms must use teams");
    }

    #[test]
    fn more_members_than_buckets() {
        // Bucket ranges for trailing members are empty; they must not touch
        // the output.
        let s = Scheduler::with_threads(4);
        let data = Distribution::Random.generate(120_000, 4, 6);
        let got = histogram_mixed_with(&s, &data, 2, 1024);
        assert_eq!(got, histogram_sequential(&data, 2));
    }

    #[test]
    fn non_power_of_two_threads() {
        let s = Scheduler::with_threads(3);
        let data = Distribution::Gauss.generate(100_000, 3, 7);
        let got = histogram_mixed_with(&s, &data, 31, 1024);
        assert_eq!(got, histogram_sequential(&data, 31));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_matches_sequential(
            data in proptest::collection::vec(any::<u32>(), 0..4_000),
            buckets in 1usize..64,
        ) {
            let s = Scheduler::with_threads(2);
            let got = histogram_mixed_with(&s, &data, buckets, 64);
            prop_assert_eq!(got, histogram_sequential(&data, buckets));
        }

        #[test]
        fn prop_bucket_of_is_monotone_and_in_range(x in any::<u32>(), y in any::<u32>(), b in 1usize..1_000) {
            let bx = bucket_of(x, b);
            let by = bucket_of(y, b);
            prop_assert!(bx < b);
            prop_assert!(by < b);
            if x <= y {
                prop_assert!(bx <= by);
            }
        }
    }
}
