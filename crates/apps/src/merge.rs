//! Mixed-mode parallel merging and merge sort.
//!
//! The merge of two sorted runs is a data-parallel operation with a
//! dependency structure that fork-join schedulers can only express by
//! recursive splitting: every split spawns two tasks and the recombination
//! needs a join.  With team-building the whole merge is **one** team task:
//! every member computes its slice of the output with a *merge-path /
//! co-ranking* binary search and merges it independently; no intra-merge
//! synchronization is needed at all.
//!
//! [`merge_sort_mixed`] builds a bottom-up merge sort on top of this: leaf
//! chunks are sorted by independent `r = 1` tasks (classic work-stealing),
//! and every merge pass processes pairs of runs, using team tasks for the
//! large merges near the top of the tree and `r = 1` tasks for the small
//! ones — the same "fork-join below, data-parallel teams above" structure as
//! the paper's mixed-mode Quicksort, but mirrored (Quicksort's data-parallel
//! phase comes first, merge sort's comes last).


use teamsteal_core::{Scheduler, TaskContext};
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::team_size::{best_team_size, chunk_range};

/// Tunable parameters of the mixed-mode merge sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSortConfig {
    /// Runs of at most this length are sorted directly with the standard
    /// library sort (the merge sort's leaves).
    pub leaf_size: usize,
    /// Minimum number of output elements each team member must receive for a
    /// merge to be executed by a team instead of a single `r = 1` task.
    pub min_elements_per_member: usize,
}

impl Default for MergeSortConfig {
    fn default() -> Self {
        MergeSortConfig {
            leaf_size: 4 * 1024,
            min_elements_per_member: 16 * 1024,
        }
    }
}

/// Merge-path co-ranking: the number of elements of `a` among the first `k`
/// elements of the stable merge of `a` and `b` (ties taken from `a` first).
///
/// Runs in `O(log(min(k, |a|)))`.  The returned split is unique and
/// monotonically non-decreasing in `k`, which is what makes independent,
/// per-member output partitioning consistent.
///
/// ```
/// use teamsteal_apps::merge::co_rank;
///
/// let a = [1, 3, 5, 7];
/// let b = [2, 4, 6, 8];
/// assert_eq!(co_rank(0, &a, &b), 0);
/// assert_eq!(co_rank(4, &a, &b), 2); // 1 2 3 4 → two from a
/// assert_eq!(co_rank(8, &a, &b), 4);
/// ```
pub fn co_rank<T: Ord>(k: usize, a: &[T], b: &[T]) -> usize {
    assert!(k <= a.len() + b.len(), "cannot take {k} elements from a merge of {}", a.len() + b.len());
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    // Invariant: the unique split point lies in [lo, hi].  The predicate
    // "taking only i elements from a is too few" is monotone in i, so this is
    // a partition-point search.
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        if j > 0 && i < a.len() && b[j - 1] >= a[i] {
            // b[j-1] would have been emitted before a[i] only if it were
            // strictly smaller (ties prefer a): we must take more from a.
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    lo
}

/// Sequentially merges the sorted runs `a` and `b` into `out` (stable: ties
/// are taken from `a` first).
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output must hold both runs");
    let (mut x, mut y) = (0, 0);
    for slot in out.iter_mut() {
        if x < a.len() && (y >= b.len() || a[x] <= b[y]) {
            *slot = a[x];
            x += 1;
        } else {
            *slot = b[y];
            y += 1;
        }
    }
}

/// The per-member piece of a team merge: computes the member's slice of the
/// output with two co-rank searches and merges it sequentially.
///
/// Intended to be called from inside a team task body; `dst` must point to an
/// output buffer of length `a.len() + b.len()` that no other thread writes
/// outside its own member slice.
pub fn team_merge<T: Ord + Copy>(
    ctx: &TaskContext<'_>,
    a: &[T],
    b: &[T],
    dst: SendMutPtr<T>,
) {
    let total = a.len() + b.len();
    let members = ctx.team_size();
    let me = ctx.local_id();
    let out_range = chunk_range(total, members, me);
    if out_range.is_empty() {
        return;
    }
    let i_start = co_rank(out_range.start, a, b);
    let i_end = co_rank(out_range.end, a, b);
    let j_start = out_range.start - i_start;
    let j_end = out_range.end - i_end;
    // SAFETY: the member slices of the output are disjoint by construction
    // (chunk_range partitions [0, total)), and the caller guarantees the
    // buffer is valid for the duration of the team task.
    let my_out = unsafe { dst.add(out_range.start).slice_mut(out_range.len()) };
    merge_into(&a[i_start..i_end], &b[j_start..j_end], my_out);
}

/// Merges the sorted runs `a` and `b` into `out` using a single data-parallel
/// team task (or sequentially when the input is too small to pay for team
/// formation).
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn parallel_merge<T>(scheduler: &Scheduler, a: &[T], b: &[T], out: &mut [T])
where
    T: Ord + Copy + Send + Sync + 'static,
{
    assert_eq!(out.len(), a.len() + b.len(), "output must hold both runs");
    let total = out.len();
    let team = best_team_size(
        total,
        MergeSortConfig::default().min_elements_per_member,
        scheduler.num_threads(),
    );
    if team <= 1 {
        merge_into(a, b, out);
        return;
    }
    let pa = SendConstPtr::from_slice(a);
    let pb = SendConstPtr::from_slice(b);
    let (na, nb) = (a.len(), b.len());
    let dst = SendMutPtr::from_slice(out);
    scheduler.run_team(team, move |ctx| {
        // SAFETY: inputs and output outlive the blocking run_team call;
        // members write disjoint output slices (see `team_merge`).
        let (a, b) = unsafe { (pa.slice(na), pb.slice(nb)) };
        team_merge(ctx, a, b, dst);
    });
}

/// Sorts `data` with the mixed-mode bottom-up merge sort described in the
/// module documentation, using the default [`MergeSortConfig`].
pub fn merge_sort_mixed<T>(scheduler: &Scheduler, data: &mut [T])
where
    T: Ord + Copy + Send + Sync + 'static,
{
    merge_sort_mixed_with(scheduler, data, &MergeSortConfig::default());
}

/// [`merge_sort_mixed`] with explicit tuning parameters.
pub fn merge_sort_mixed_with<T>(scheduler: &Scheduler, data: &mut [T], config: &MergeSortConfig)
where
    T: Ord + Copy + Send + Sync + 'static,
{
    let n = data.len();
    let leaf = config.leaf_size.max(2);
    if n <= leaf {
        data.sort_unstable();
        return;
    }
    let p = scheduler.num_threads();

    // Phase A: sort the leaf runs with independent r = 1 tasks.
    {
        let base = SendMutPtr::from_slice(data);
        scheduler.scope(|scope| {
            let mut start = 0;
            while start < n {
                let len = leaf.min(n - start);
                // SAFETY: leaf ranges are disjoint and within the slice.
                let chunk = unsafe { base.add(start) };
                scope.spawn(move |_ctx| {
                    // SAFETY: the scope blocks until this task finishes and no
                    // other task touches this leaf range.
                    unsafe { chunk.slice_mut(len) }.sort_unstable();
                });
                start += len;
            }
        });
    }

    // Phase B: bottom-up merge passes, ping-ponging between `data` and a
    // scratch buffer of the same length.
    let mut scratch: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    let mut width = leaf;
    while width < n {
        {
            let (src, dst) = if src_is_data {
                (SendConstPtr::new(data.as_ptr()), SendMutPtr::from_slice(&mut scratch))
            } else {
                (SendConstPtr::new(scratch.as_ptr()), SendMutPtr::from_slice(data))
            };
            let min_per_member = config.min_elements_per_member;
            scheduler.scope(|scope| {
                let mut start = 0;
                while start < n {
                    let left_len = width.min(n - start);
                    let right_len = width.min(n - start - left_len);
                    let total = left_len + right_len;
                    // SAFETY: each pair-of-runs range is disjoint from every
                    // other task's range in this pass.
                    let pair_src = unsafe { src.add(start) };
                    let pair_dst = unsafe { dst.add(start) };
                    if right_len == 0 {
                        // Odd tail run: copy it through unchanged.
                        scope.spawn(move |_ctx| {
                            // SAFETY: disjoint range, valid for the pass.
                            let s = unsafe { pair_src.slice(left_len) };
                            let d = unsafe { pair_dst.slice_mut(left_len) };
                            d.copy_from_slice(s);
                        });
                    } else {
                        let team = best_team_size(total, min_per_member, p);
                        if team <= 1 {
                            scope.spawn(move |_ctx| {
                                // SAFETY: disjoint range, valid for the pass.
                                let s = unsafe { pair_src.slice(total) };
                                let d = unsafe { pair_dst.slice_mut(total) };
                                merge_into(&s[..left_len], &s[left_len..], d);
                            });
                        } else {
                            scope.spawn_team(team, move |ctx| {
                                // SAFETY: disjoint range, valid for the pass;
                                // members write disjoint output slices.
                                let s = unsafe { pair_src.slice(total) };
                                team_merge(ctx, &s[..left_len], &s[left_len..], pair_dst);
                            });
                        }
                    }
                    start += total;
                }
            });
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        // The sorted result ended up in the scratch buffer.
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    #[test]
    fn co_rank_boundaries() {
        let a = [1u32, 2, 3];
        let b = [4u32, 5, 6];
        assert_eq!(co_rank(0, &a, &b), 0);
        assert_eq!(co_rank(3, &a, &b), 3);
        assert_eq!(co_rank(6, &a, &b), 3);
        // All of b smaller than all of a.
        assert_eq!(co_rank(3, &b, &a), 0);
        // Empty runs.
        assert_eq!(co_rank(2, &a, &[]), 2);
        assert_eq!(co_rank(2, &[] as &[u32], &b), 0);
    }

    #[test]
    fn co_rank_prefers_a_on_ties() {
        let a = [5u32, 5, 5];
        let b = [5u32, 5];
        // The stable merge emits all of a before any of b.
        for k in 0..=3 {
            assert_eq!(co_rank(k, &a, &b), k);
        }
        assert_eq!(co_rank(4, &a, &b), 3);
        assert_eq!(co_rank(5, &a, &b), 3);
    }

    #[test]
    #[should_panic]
    fn co_rank_rejects_out_of_range_k() {
        let _ = co_rank(3, &[1u32], &[2u32]);
    }

    #[test]
    fn merge_into_matches_std() {
        let a = [1u32, 4, 4, 9];
        let b = [2u32, 4, 8, 10, 11];
        let mut out = vec![0u32; 9];
        merge_into(&a, &b, &mut out);
        let mut expected: Vec<u32> = a.iter().chain(&b).copied().collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_merge_small_and_large() {
        let s = Scheduler::with_threads(4);
        // Small: sequential path.
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        let mut out = vec![0u32; 200];
        parallel_merge(&s, &a, &b, &mut out);
        assert!(is_sorted(&out));

        // Large: team path.
        let a: Vec<u32> = (0..120_000u32).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..80_000u32).map(|i| i * 3).collect();
        let mut out = vec![0u32; a.len() + b.len()];
        parallel_merge(&s, &a, &b, &mut out);
        assert!(is_sorted(&out));
        let mut expected: Vec<u32> = a.iter().chain(&b).copied().collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    fn check_merge_sort(threads: usize, n: usize, config: &MergeSortConfig, seed: u64) {
        let s = Scheduler::with_threads(threads);
        for d in Distribution::ALL {
            let original = d.generate(n, threads, seed);
            let mut v = original.clone();
            merge_sort_mixed_with(&s, &mut v, config);
            assert!(is_sorted(&v), "{d:?} not sorted (n={n}, p={threads})");
            assert!(is_permutation_of(&original, &v), "{d:?} corrupted");
        }
    }

    #[test]
    fn merge_sort_small_inputs() {
        let s = Scheduler::with_threads(2);
        for v in [vec![], vec![3u32], vec![2, 1], vec![5, 5, 5, 1]] {
            let mut sorted = v.clone();
            merge_sort_mixed(&s, &mut sorted);
            assert!(is_sorted(&sorted));
            assert!(is_permutation_of(&v, &sorted));
        }
    }

    #[test]
    fn merge_sort_all_distributions_four_threads() {
        let config = MergeSortConfig {
            leaf_size: 1024,
            min_elements_per_member: 4096,
        };
        check_merge_sort(4, 150_000, &config, 21);
    }

    #[test]
    fn merge_sort_uses_teams_for_large_inputs() {
        let s = Scheduler::with_threads(4);
        let config = MergeSortConfig {
            leaf_size: 1024,
            min_elements_per_member: 4096,
        };
        let original = Distribution::Random.generate(200_000, 4, 33);
        let mut v = original.clone();
        merge_sort_mixed_with(&s, &mut v, &config);
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));
        assert!(s.metrics().teams_formed > 0, "top merge passes must use teams");
    }

    #[test]
    fn merge_sort_non_power_of_two_threads_and_length() {
        let config = MergeSortConfig {
            leaf_size: 512,
            min_elements_per_member: 2048,
        };
        check_merge_sort(3, 100_001, &config, 44);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_co_rank_is_a_valid_monotone_split(
            mut a in proptest::collection::vec(0u32..50, 0..200),
            mut b in proptest::collection::vec(0u32..50, 0..200),
        ) {
            a.sort_unstable();
            b.sort_unstable();
            let total = a.len() + b.len();
            let mut prev = 0;
            for k in 0..=total {
                let i = co_rank(k, &a, &b);
                let j = k - i;
                prop_assert!(i <= a.len());
                prop_assert!(j <= b.len());
                prop_assert!(i >= prev, "co_rank must be monotone in k");
                prev = i;
                // Valid merge-path split: everything taken is <= everything
                // not yet taken on the other run.
                if i > 0 && j < b.len() {
                    prop_assert!(a[i - 1] <= b[j]);
                }
                if j > 0 && i < a.len() {
                    prop_assert!(b[j - 1] <= a[i]);
                }
            }
        }

        #[test]
        fn prop_merge_sort_sorts_arbitrary_vectors(
            data in proptest::collection::vec(any::<u32>(), 0..5_000),
        ) {
            let s = Scheduler::with_threads(2);
            let config = MergeSortConfig { leaf_size: 64, min_elements_per_member: 256 };
            let mut v = data.clone();
            merge_sort_mixed_with(&s, &mut v, &config);
            prop_assert!(is_sorted(&v));
            prop_assert!(is_permutation_of(&data, &v));
        }
    }
}
