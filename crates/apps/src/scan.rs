//! Team-parallel prefix sums (scans).
//!
//! The classic three-phase parallel scan, expressed as a single data-parallel
//! team task with two intra-team barriers:
//!
//! 1. every member scans its contiguous chunk locally and publishes the chunk
//!    total,
//! 2. the barrier leader computes an exclusive scan over the chunk totals
//!    (`members` values — trivially sequential),
//! 3. every member adds its chunk offset to its part of the output.
//!
//! A fork-join scheduler has to express this as two rounds of `p` spawned
//! tasks with a full join in between; with team-building the workers stay
//! co-scheduled across the phases and the synchronization is two cheap team
//! barriers.  This is precisely the "data-parallel tasks with dependencies"
//! pattern the paper's introduction says classical work-stealing handles
//! poorly.

use std::sync::Arc;

use teamsteal_core::Scheduler;
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::slots::TeamSlots;
use crate::team_size::{best_team_size, chunk_range};

/// Minimum elements per member before a team scan pays off.
pub const MIN_ELEMENTS_PER_MEMBER: usize = 8 * 1024;

/// Inclusive prefix sum: `out[i] = combine(input[0], …, input[i])`.
///
/// `combine` must be associative with identity `identity`.
///
/// # Panics
///
/// Panics if `input` and `out` have different lengths.
///
/// ```
/// use teamsteal_core::Scheduler;
/// use teamsteal_apps::scan::inclusive_scan_mixed;
///
/// let scheduler = Scheduler::with_threads(2);
/// let input = vec![1u64, 2, 3, 4];
/// let mut out = vec![0u64; 4];
/// inclusive_scan_mixed(&scheduler, &input, &mut out, 0, |a, b| a + b);
/// assert_eq!(out, vec![1, 3, 6, 10]);
/// ```
pub fn inclusive_scan_mixed<T, F>(
    scheduler: &Scheduler,
    input: &[T],
    out: &mut [T],
    identity: T,
    combine: F,
) where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    scan_impl(scheduler, input, out, identity, combine, true, MIN_ELEMENTS_PER_MEMBER);
}

/// Exclusive prefix sum: `out[0] = identity`, `out[i] = combine(input[0], …,
/// input[i-1])`.
///
/// # Panics
///
/// Panics if `input` and `out` have different lengths.
pub fn exclusive_scan_mixed<T, F>(
    scheduler: &Scheduler,
    input: &[T],
    out: &mut [T],
    identity: T,
    combine: F,
) where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    scan_impl(scheduler, input, out, identity, combine, false, MIN_ELEMENTS_PER_MEMBER);
}

/// Scan with an explicit work-per-member threshold (used by tests and the
/// benchmark harness to force team execution on small inputs).
pub fn scan_with<T, F>(
    scheduler: &Scheduler,
    input: &[T],
    out: &mut [T],
    identity: T,
    combine: F,
    inclusive: bool,
    min_per_member: usize,
) where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    scan_impl(scheduler, input, out, identity, combine, inclusive, min_per_member);
}

fn sequential_scan<T, F>(input: &[T], out: &mut [T], identity: T, combine: &F, inclusive: bool)
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut acc = identity;
    for (o, &x) in out.iter_mut().zip(input) {
        if inclusive {
            acc = combine(acc, x);
            *o = acc;
        } else {
            *o = acc;
            acc = combine(acc, x);
        }
    }
}

fn scan_impl<T, F>(
    scheduler: &Scheduler,
    input: &[T],
    out: &mut [T],
    identity: T,
    combine: F,
    inclusive: bool,
    min_per_member: usize,
) where
    T: Copy + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    assert_eq!(input.len(), out.len(), "scan output must match the input length");
    let n = input.len();
    if n == 0 {
        return;
    }
    let p = scheduler.num_threads();
    let team = best_team_size(n, min_per_member, p);
    if team <= 1 {
        sequential_scan(input, out, identity, &combine, inclusive);
        return;
    }

    let src = SendConstPtr::from_slice(input);
    let dst = SendMutPtr::from_slice(out);
    // Chunk totals, one per potential team member (the executing team may be
    // larger than requested on non power-of-two machines).
    let totals = Arc::new(TeamSlots::new(p, identity));
    let offsets = Arc::new(TeamSlots::new(p, identity));
    let combine = Arc::new(combine);

    scheduler.run_team(team, move |ctx| {
        let members = ctx.team_size();
        let me = ctx.local_id();
        let range = chunk_range(n, members, me);
        // SAFETY: the input outlives the blocking run_team call and is never
        // mutated; each member writes only its own disjoint output chunk.
        let input = unsafe { src.slice(n) };
        let my_out = unsafe { dst.add(range.start).slice_mut(range.len()) };

        // Phase 1: local scan of the chunk, remembering the chunk total.
        let mut acc = identity;
        for (o, &x) in my_out.iter_mut().zip(&input[range.clone()]) {
            if inclusive {
                acc = combine(acc, x);
                *o = acc;
            } else {
                *o = acc;
                acc = combine(acc, x);
            }
        }
        // For an exclusive local scan the accumulator already holds the full
        // chunk total (it absorbed the last element above); for an inclusive
        // scan it does too.  Publish it.
        // SAFETY: slot `me` is written only by this member before the barrier.
        unsafe { totals.write(me, acc) };

        // Phase 2: one member turns chunk totals into chunk offsets.
        if ctx.barrier() {
            let mut running = identity;
            for i in 0..members {
                // SAFETY: every member published its total before the barrier;
                // only the single leader writes the offsets between barriers.
                unsafe { offsets.write(i, running) };
                running = combine(running, unsafe { totals.read(i) });
            }
        }

        // Phase 3: everyone adds its chunk offset.
        ctx.barrier();
        // SAFETY: the leader wrote all offsets before the second barrier.
        let offset = unsafe { offsets.read(me) };
        for o in my_out.iter_mut() {
            *o = combine(offset, *o);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_inclusive(input: &[u64]) -> Vec<u64> {
        let mut acc = 0u64;
        input
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    fn reference_exclusive(input: &[u64]) -> Vec<u64> {
        let mut acc = 0u64;
        input
            .iter()
            .map(|&x| {
                let prev = acc;
                acc += x;
                prev
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let s = Scheduler::with_threads(2);
        let mut out: Vec<u64> = vec![];
        inclusive_scan_mixed(&s, &[], &mut out, 0, |a, b| a + b);
        assert!(out.is_empty());

        let mut out = vec![0u64];
        inclusive_scan_mixed(&s, &[5], &mut out, 0, |a, b| a + b);
        assert_eq!(out, vec![5]);
        exclusive_scan_mixed(&s, &[5], &mut out, 0, |a, b| a + b);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_are_rejected() {
        let s = Scheduler::with_threads(2);
        let mut out = vec![0u64; 3];
        inclusive_scan_mixed(&s, &[1, 2], &mut out, 0, |a, b| a + b);
    }

    #[test]
    fn large_inclusive_scan_uses_a_team() {
        let s = Scheduler::with_threads(4);
        let input: Vec<u64> = (0..120_000).map(|i| i % 5).collect();
        let mut out = vec![0u64; input.len()];
        scan_with(&s, &input, &mut out, 0, |a, b| a + b, true, 1024);
        assert_eq!(out, reference_inclusive(&input));
        assert!(s.metrics().teams_formed > 0, "large scans must run as team tasks");
    }

    #[test]
    fn large_exclusive_scan_matches_reference() {
        let s = Scheduler::with_threads(4);
        let input: Vec<u64> = (0..90_000).map(|i| (i * 7) % 11).collect();
        let mut out = vec![0u64; input.len()];
        scan_with(&s, &input, &mut out, 0, |a, b| a + b, false, 1024);
        assert_eq!(out, reference_exclusive(&input));
    }

    #[test]
    fn max_scan_is_supported() {
        // Scan with a non-additive associative operation (running maximum).
        let s = Scheduler::with_threads(4);
        let input: Vec<u64> = (0..60_000).map(|i| (i * 2654435761u64) % 1_000).collect();
        let mut out = vec![0u64; input.len()];
        scan_with(&s, &input, &mut out, 0, |a, b| a.max(b), true, 512);
        let mut acc = 0u64;
        for (i, &x) in input.iter().enumerate() {
            acc = acc.max(x);
            assert_eq!(out[i], acc, "mismatch at {i}");
        }
    }

    #[test]
    fn non_power_of_two_threads_and_odd_lengths() {
        let s = Scheduler::with_threads(3);
        let input: Vec<u64> = (0..70_001).map(|i| i % 3).collect();
        let mut out = vec![0u64; input.len()];
        scan_with(&s, &input, &mut out, 0, |a, b| a + b, true, 512);
        assert_eq!(out, reference_inclusive(&input));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_inclusive_matches_reference(input in proptest::collection::vec(0u64..100, 0..3_000)) {
            let s = Scheduler::with_threads(2);
            let mut out = vec![0u64; input.len()];
            scan_with(&s, &input, &mut out, 0, |a, b| a + b, true, 64);
            prop_assert_eq!(out, reference_inclusive(&input));
        }

        #[test]
        fn prop_exclusive_matches_reference(input in proptest::collection::vec(0u64..100, 0..3_000)) {
            let s = Scheduler::with_threads(2);
            let mut out = vec![0u64; input.len()];
            scan_with(&s, &input, &mut out, 0, |a, b| a + b, false, 64);
            prop_assert_eq!(out, reference_exclusive(&input));
        }
    }
}
