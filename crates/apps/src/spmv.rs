//! Sparse matrix–vector multiplication (SpMV) as a team kernel.
//!
//! SpMV is the archetypal memory-bound data-parallel kernel: every output
//! element is an independent sparse dot product, but the work per row varies
//! with the row's population, so good load balance needs either fine-grained
//! tasks (high scheduling overhead) or a few coarse row blocks per thread
//! (exactly what a team provides).  [`spmv_mixed`] runs the whole product as
//! one team task whose members own contiguous row ranges balanced by
//! *non-zeros*, not by row count; repeated products (e.g. the power iteration
//! in [`power_iteration_mixed`]) reuse the same team across iterations, the
//! team-reuse property of Section 3.1 of the paper.

use std::sync::Arc;

use teamsteal_core::Scheduler;
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::team_size::best_team_size;

/// A sparse matrix in compressed-sparse-row (CSR) format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_offsets[r] .. row_offsets[r + 1]` indexes the entries of row `r`.
    row_offsets: Vec<usize>,
    /// Column index of each stored entry.
    col_indices: Vec<u32>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.  Duplicate
    /// entries are kept (their contributions add up in the product).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; rows];
        for &(r, c, _) in triplets {
            assert!(r < rows, "row index {r} out of range");
            assert!(c < cols, "column index {c} out of range");
            counts[r] += 1;
        }
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut acc = 0usize;
        row_offsets.push(0);
        for &c in &counts {
            acc += c;
            row_offsets.push(acc);
        }
        let mut cursor = row_offsets.clone();
        let mut col_indices = vec![0u32; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let slot = cursor[r];
            col_indices[slot] = c as u32;
            values[slot] = v;
            cursor[r] += 1;
        }
        CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// A square tridiagonal matrix (the 1-D Laplacian stencil), handy for
    /// tests and examples.
    pub fn tridiagonal(n: usize, diag: f64, off: f64) -> Self {
        let mut triplets = Vec::with_capacity(3 * n);
        for i in 0..n {
            triplets.push((i, i, diag));
            if i > 0 {
                triplets.push((i, i - 1, off));
            }
            if i + 1 < n {
                triplets.push((i, i + 1, off));
            }
        }
        Self::from_triplets(n, n, &triplets)
    }

    /// A pseudo-random sparse matrix with about `avg_nnz_per_row` entries per
    /// row, deterministic in `seed`.
    pub fn random(rows: usize, cols: usize, avg_nnz_per_row: usize, seed: u64) -> Self {
        let mut rng = teamsteal_util::rng::Xoshiro256::new(seed);
        let mut triplets = Vec::with_capacity(rows * avg_nnz_per_row);
        for r in 0..rows {
            for _ in 0..avg_nnz_per_row {
                let c = rng.next_usize_below(cols.max(1));
                triplets.push((r, c, rng.next_f64() * 2.0 - 1.0));
            }
        }
        Self::from_triplets(rows, cols, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The sparse dot product of row `r` with the dense vector `x`.
    #[inline]
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let range = self.row_offsets[r]..self.row_offsets[r + 1];
        let mut acc = 0.0;
        for (ci, v) in self.col_indices[range.clone()].iter().zip(&self.values[range]) {
            acc += v * x[*ci as usize];
        }
        acc
    }

    /// Row boundaries that split the matrix into `parts` contiguous row
    /// ranges with approximately equal numbers of non-zeros.
    fn nnz_balanced_bounds(&self, parts: usize) -> Vec<usize> {
        let total = self.nnz();
        let mut bounds = Vec::with_capacity(parts + 1);
        bounds.push(0);
        for p in 1..parts {
            let target = total * p / parts;
            let row = self.row_offsets.partition_point(|&off| off < target);
            bounds.push(row.min(self.rows).max(*bounds.last().unwrap()));
        }
        bounds.push(self.rows);
        bounds
    }
}

/// Sequential reference: `y = A · x`.
///
/// # Panics
///
/// Panics if `x.len() != A.cols()`.
pub fn spmv_sequential(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "vector length must match the column count");
    (0..a.rows).map(|r| a.row_dot(r, x)).collect()
}

/// Minimum number of non-zeros per team member before SpMV runs as a team.
pub const MIN_NNZ_PER_MEMBER: usize = 16 * 1024;

/// Mixed-mode `y = A · x`: one team task whose members own nnz-balanced row
/// ranges; sequential below the work threshold.
///
/// # Panics
///
/// Panics if `x.len() != A.cols()`.
pub fn spmv_mixed(scheduler: &Scheduler, a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    spmv_mixed_with(scheduler, a, x, MIN_NNZ_PER_MEMBER)
}

/// [`spmv_mixed`] with an explicit nnz-per-member threshold.
pub fn spmv_mixed_with(
    scheduler: &Scheduler,
    a: &CsrMatrix,
    x: &[f64],
    min_nnz_per_member: usize,
) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "vector length must match the column count");
    let team = best_team_size(a.nnz(), min_nnz_per_member, scheduler.num_threads());
    if team <= 1 || a.rows == 0 {
        return spmv_sequential(a, x);
    }
    let mut y = vec![0.0f64; a.rows];
    let bounds = Arc::new(a.nnz_balanced_bounds(team));
    let out = SendMutPtr::from_slice(&mut y);
    let xin = SendConstPtr::from_slice(x);
    let xlen = x.len();
    // The matrix itself is borrowed; hand its three arrays over as raw
    // pointers for the duration of the blocking call.
    let offsets = SendConstPtr::from_slice(&a.row_offsets);
    let cols = SendConstPtr::from_slice(&a.col_indices);
    let vals = SendConstPtr::from_slice(&a.values);
    let (offsets_len, nnz, rows) = (a.row_offsets.len(), a.nnz(), a.rows);

    scheduler.run_team(team, move |ctx| {
        let members = ctx.team_size();
        let me = ctx.local_id();
        // The nnz-balanced bounds were computed for `team` parts; members
        // beyond that (possible only when the executing team was rounded up,
        // Refinement 2/3) have nothing to do.
        let parts = bounds.len() - 1;
        if me >= parts || members == 0 {
            return;
        }
        // If the executing team is *smaller* than planned this would lose
        // rows, but teams are never smaller than the requirement; assert the
        // invariant in debug builds.
        debug_assert!(members >= parts);
        let (row_start, row_end) = (bounds[me], bounds[me + 1]);
        if row_start >= row_end {
            return;
        }
        // SAFETY: the matrix arrays and `x` outlive the blocking call and are
        // only read; members write disjoint row ranges of `y`.
        let offsets = unsafe { offsets.slice(offsets_len) };
        let cols = unsafe { cols.slice(nnz) };
        let vals = unsafe { vals.slice(nnz) };
        let x = unsafe { xin.slice(xlen) };
        debug_assert_eq!(offsets.len(), rows + 1);
        let my_y = unsafe { out.add(row_start).slice_mut(row_end - row_start) };
        for (i, y_slot) in my_y.iter_mut().enumerate() {
            let r = row_start + i;
            let mut acc = 0.0;
            for k in offsets[r]..offsets[r + 1] {
                acc += vals[k] * x[cols[k] as usize];
            }
            *y_slot = acc;
        }
    });
    y
}

/// A few steps of power iteration `x ← normalize(A · x)` using the mixed-mode
/// SpMV, returning the final vector and its last Rayleigh-quotient estimate.
/// Demonstrates team reuse across iterations.
pub fn power_iteration_mixed(
    scheduler: &Scheduler,
    a: &CsrMatrix,
    iterations: usize,
) -> (Vec<f64>, f64) {
    assert_eq!(a.rows, a.cols, "power iteration needs a square matrix");
    let n = a.rows;
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut eigen = 0.0;
    for _ in 0..iterations {
        let y = spmv_mixed(scheduler, a, &x);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return (y, 0.0);
        }
        eigen = x.iter().zip(&y).map(|(xi, yi)| xi * yi).sum();
        x = y.into_iter().map(|v| v / norm).collect();
    }
    (x, eigen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn triplet_construction_and_accessors() {
        let m = CsrMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (2, 3, -1.0), (0, 0, 1.0)]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 3);
        let x = [1.0, 10.0, 100.0, 1000.0];
        assert_eq!(m.row_dot(0, &x), 21.0);
        assert_eq!(m.row_dot(1, &x), 0.0);
        assert_eq!(m.row_dot(2, &x), -1000.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_rejected() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn tridiagonal_spmv_matches_dense_stencil() {
        let n = 100;
        let m = CsrMatrix::tridiagonal(n, 2.0, -1.0);
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let y = spmv_sequential(&m, &x);
        for i in 1..n - 1 {
            let expected = 2.0 * x[i] - x[i - 1] - x[i + 1];
            assert!((y[i] - expected).abs() < 1e-12, "mismatch at {i}");
        }
    }

    #[test]
    fn mixed_matches_sequential_on_random_matrices() {
        let s = Scheduler::with_threads(4);
        let m = CsrMatrix::random(20_000, 20_000, 8, 99);
        let x: Vec<f64> = (0..20_000).map(|i| ((i % 13) as f64) * 0.25).collect();
        let reference = spmv_sequential(&m, &x);
        let got = spmv_mixed_with(&s, &m, &x, 1024);
        assert!(max_abs_diff(&reference, &got) < 1e-9);
        assert!(s.metrics().teams_formed > 0, "large SpMV must run as a team");
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let s = Scheduler::with_threads(2);
        let empty = CsrMatrix::from_triplets(0, 0, &[]);
        assert!(spmv_mixed(&s, &empty, &[]).is_empty());
        // A matrix with rows but no entries produces all zeros.
        let zeros = CsrMatrix::from_triplets(5, 3, &[]);
        assert_eq!(spmv_mixed(&s, &zeros, &[1.0, 2.0, 3.0]), vec![0.0; 5]);
    }

    #[test]
    #[should_panic]
    fn mismatched_vector_length_rejected() {
        let s = Scheduler::with_threads(2);
        let m = CsrMatrix::tridiagonal(4, 2.0, -1.0);
        let _ = spmv_mixed(&s, &m, &[1.0, 2.0]);
    }

    #[test]
    fn power_iteration_finds_the_dominant_mode() {
        // For the tridiagonal Laplacian the dominant eigenvalue approaches 4
        // as n grows; a handful of iterations should already exceed 3.
        let s = Scheduler::with_threads(2);
        let m = CsrMatrix::tridiagonal(512, 2.0, -1.0);
        let (x, eigen) = power_iteration_mixed(&s, &m, 50);
        assert_eq!(x.len(), 512);
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "iterate must stay normalized");
        assert!(eigen > 3.0 && eigen < 4.0 + 1e-9, "eigen estimate {eigen} out of range");
    }

    #[test]
    fn nnz_balanced_bounds_cover_all_rows() {
        // A matrix with a very skewed nnz distribution: row 0 holds half of
        // all entries.  The balanced bounds must still partition the rows.
        let mut triplets = Vec::new();
        for c in 0..500 {
            triplets.push((0usize, c, 1.0));
        }
        for r in 1..100 {
            for c in 0..5 {
                triplets.push((r, c, 1.0));
            }
        }
        let m = CsrMatrix::from_triplets(100, 500, &triplets);
        let bounds = m.nnz_balanced_bounds(4);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&100));
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds must be monotone");
        let s = Scheduler::with_threads(4);
        let x = vec![1.0; 500];
        let got = spmv_mixed_with(&s, &m, &x, 16);
        assert!(max_abs_diff(&spmv_sequential(&m, &x), &got) < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_mixed_matches_sequential(
            rows in 1usize..200,
            cols in 1usize..200,
            nnz_per_row in 0usize..6,
            seed in any::<u64>(),
        ) {
            let m = CsrMatrix::random(rows, cols, nnz_per_row, seed);
            let x: Vec<f64> = (0..cols).map(|i| ((i % 11) as f64) - 5.0).collect();
            let s = Scheduler::with_threads(2);
            let got = spmv_mixed_with(&s, &m, &x, 64);
            prop_assert!(max_abs_diff(&spmv_sequential(&m, &x), &got) < 1e-9);
        }
    }
}
