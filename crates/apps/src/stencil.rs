//! Iterative 1-D Jacobi stencil (heat diffusion) as a long-lived team task.
//!
//! An iterative stencil is the textbook case of "data-parallel tasks with
//! dependencies" from the paper's introduction: every sweep is data parallel,
//! but sweep `t + 1` may only start once sweep `t` has finished everywhere.
//! A fork-join runtime re-spawns `p` tasks per sweep and joins them; on the
//! `teamsteal` scheduler the **whole iteration** is a single team task — the
//! team is built once (one CAS per member), stays together for every sweep
//! (the team-reuse property of Section 3.1), and sweeps are separated by
//! cheap intra-team barriers.
//!
//! The kernel solves the 1-D heat equation with fixed (Dirichlet) boundary
//! values: `next[i] = prev[i] + alpha * (prev[i-1] - 2 prev[i] + prev[i+1])`.


use teamsteal_core::Scheduler;
use teamsteal_util::SendMutPtr;

use crate::team_size::{best_team_size, chunk_range};

/// Parameters of a Jacobi run.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilConfig {
    /// Number of sweeps to perform.
    pub sweeps: usize,
    /// Diffusion coefficient (`0 < alpha <= 0.5` for stability).
    pub alpha: f64,
    /// Minimum number of grid cells per team member before the iteration is
    /// run by a team instead of sequentially.
    pub min_cells_per_member: usize,
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig {
            sweeps: 100,
            alpha: 0.25,
            min_cells_per_member: 8 * 1024,
        }
    }
}

/// One sequential Jacobi sweep over the interior cells of `prev` into `next`.
fn sweep_range(prev: &[f64], next: &mut [f64], alpha: f64, range: std::ops::Range<usize>) {
    for i in range {
        next[i] = prev[i] + alpha * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
    }
}

/// Sequential reference implementation: `config.sweeps` Jacobi sweeps over
/// `grid`, returning the final state.
pub fn jacobi_sequential(grid: &[f64], config: &StencilConfig) -> Vec<f64> {
    let n = grid.len();
    let mut prev = grid.to_vec();
    if n < 3 || config.sweeps == 0 {
        return prev;
    }
    let mut next = prev.clone();
    for _ in 0..config.sweeps {
        sweep_range(&prev, &mut next, config.alpha, 1..n - 1);
        // Boundaries are fixed.
        next[0] = prev[0];
        next[n - 1] = prev[n - 1];
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// Mixed-mode Jacobi iteration: the full sweep loop runs inside one team task
/// (or sequentially if the grid is too small for a team to pay off).
pub fn jacobi_mixed(scheduler: &Scheduler, grid: &[f64], config: &StencilConfig) -> Vec<f64> {
    let n = grid.len();
    if n < 3 || config.sweeps == 0 {
        return grid.to_vec();
    }
    let interior = n - 2;
    let team = best_team_size(interior, config.min_cells_per_member, scheduler.num_threads());
    if team <= 1 {
        return jacobi_sequential(grid, config);
    }

    let mut buf_a = grid.to_vec();
    let mut buf_b = grid.to_vec();
    let pa = SendMutPtr::from_slice(&mut buf_a);
    let pb = SendMutPtr::from_slice(&mut buf_b);
    let sweeps = config.sweeps;
    let alpha = config.alpha;

    scheduler.run_team(team, move |ctx| {
        let members = ctx.team_size();
        let me = ctx.local_id();
        // Each member owns a contiguous stripe of interior cells for the whole
        // iteration (good locality: the stripe stays in the member's cache).
        let my_interior = chunk_range(interior, members, me);
        let my_range = my_interior.start + 1..my_interior.end + 1;
        // The member additionally owns the boundary cell adjacent to its
        // stripe, so write ranges of different members never overlap.  A
        // member with an empty stripe (more members than interior cells)
        // owns nothing; the boundary cells belong to the first member and to
        // the *non-empty* stripe that touches the right edge.
        let owns_left = me == 0;
        let owns_right = !my_interior.is_empty() && my_interior.end == interior;
        let write_start = if owns_left { 0 } else { my_range.start };
        let write_end = if owns_right { n } else { my_range.end };
        for sweep in 0..sweeps {
            let (src, dst) = if sweep % 2 == 0 { (pa, pb) } else { (pb, pa) };
            // SAFETY: the source buffer is only *read* during this sweep (all
            // writes go to the destination buffer), and the previous sweep's
            // writes to it are ordered before these reads by the barrier.
            let prev: &[f64] = unsafe { std::slice::from_raw_parts(src.get(), n) };
            // SAFETY: write ranges are disjoint across members by
            // construction, so this &mut slice aliases nothing.
            let next = unsafe { dst.add(write_start).slice_mut(write_end - write_start) };
            for i in my_range.clone() {
                next[i - write_start] =
                    prev[i] + alpha * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
            }
            if owns_left {
                next[0] = prev[0];
            }
            if owns_right {
                next[n - 1 - write_start] = prev[n - 1];
            }
            // Sweep t+1 must not read cells before every member finished
            // writing them in sweep t.
            ctx.barrier();
        }
    });

    if sweeps % 2 == 0 {
        buf_a
    } else {
        buf_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spike(n: usize) -> Vec<f64> {
        let mut g = vec![0.0; n];
        if n > 0 {
            g[n / 2] = 1000.0;
        }
        g
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn sequential_conserves_heat_with_zero_boundaries() {
        // With fixed zero boundaries, the interior total can only leak through
        // the boundary cells; after a few sweeps of a centered spike nothing
        // has reached the boundary yet, so the sum is conserved.
        let grid = spike(1001);
        let out = jacobi_sequential(
            &grid,
            &StencilConfig {
                sweeps: 10,
                alpha: 0.25,
                min_cells_per_member: 1024,
            },
        );
        let total_in: f64 = grid.iter().sum();
        let total_out: f64 = out.iter().sum();
        assert!((total_in - total_out).abs() < 1e-9);
        // Diffusion flattens the spike.
        assert!(out[500] < 1000.0);
        assert!(out[499] > 0.0 && out[501] > 0.0);
    }

    #[test]
    fn tiny_grids_and_zero_sweeps_are_identity() {
        let s = Scheduler::with_threads(2);
        let cfg = StencilConfig {
            sweeps: 0,
            ..StencilConfig::default()
        };
        let grid = vec![1.0, 2.0, 3.0];
        assert_eq!(jacobi_mixed(&s, &grid, &cfg), grid);
        let cfg = StencilConfig::default();
        assert_eq!(jacobi_mixed(&s, &[1.0, 2.0], &cfg), vec![1.0, 2.0]);
        assert_eq!(jacobi_mixed(&s, &[], &cfg), Vec::<f64>::new());
    }

    #[test]
    fn mixed_matches_sequential_on_large_grid() {
        let s = Scheduler::with_threads(4);
        let grid: Vec<f64> = (0..80_000).map(|i| ((i % 97) as f64) * 0.5).collect();
        let cfg = StencilConfig {
            sweeps: 20,
            alpha: 0.2,
            min_cells_per_member: 1024,
        };
        let reference = jacobi_sequential(&grid, &cfg);
        let got = jacobi_mixed(&s, &grid, &cfg);
        assert!(max_abs_diff(&reference, &got) < 1e-12);
        let m = s.metrics();
        assert!(m.teams_formed > 0, "large stencils must run as a team task");
        // The whole iteration is one task: the team is built once and reused
        // across all sweeps.
        assert!(m.team_tasks_executed as usize <= s.num_threads());
    }

    #[test]
    fn boundaries_stay_fixed() {
        let s = Scheduler::with_threads(4);
        let mut grid: Vec<f64> = vec![0.0; 40_000];
        grid[0] = 7.0;
        *grid.last_mut().unwrap() = -3.0;
        grid[20_000] = 500.0;
        let cfg = StencilConfig {
            sweeps: 15,
            alpha: 0.25,
            min_cells_per_member: 1024,
        };
        let out = jacobi_mixed(&s, &grid, &cfg);
        assert_eq!(out[0], 7.0);
        assert_eq!(*out.last().unwrap(), -3.0);
    }

    #[test]
    fn odd_sweep_counts_and_non_power_of_two_threads() {
        let s = Scheduler::with_threads(3);
        let grid: Vec<f64> = (0..50_001).map(|i| (i % 13) as f64).collect();
        let cfg = StencilConfig {
            sweeps: 7,
            alpha: 0.3,
            min_cells_per_member: 512,
        };
        let reference = jacobi_sequential(&grid, &cfg);
        let got = jacobi_mixed(&s, &grid, &cfg);
        assert!(max_abs_diff(&reference, &got) < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_mixed_matches_sequential(
            n in 3usize..4_000,
            sweeps in 0usize..8,
            seed in any::<u64>(),
        ) {
            let mut rng = teamsteal_util::rng::Xoshiro256::new(seed);
            let grid: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
            let cfg = StencilConfig { sweeps, alpha: 0.25, min_cells_per_member: 64 };
            let s = Scheduler::with_threads(2);
            let reference = jacobi_sequential(&grid, &cfg);
            let got = jacobi_mixed(&s, &grid, &cfg);
            prop_assert!(max_abs_diff(&reference, &got) < 1e-12);
        }
    }
}
