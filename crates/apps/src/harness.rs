//! Uniform timed-run entry points for the application kernels.
//!
//! The perf-trajectory harness (`teamsteal-bench`, `perf` bin) needs to
//! sweep every kernel the same way: prepare a deterministic input once, run
//! an untimed sequential reference, then time repeated mixed-mode executions
//! on a caller-supplied scheduler.  Each kernel module exposes a different
//! natural signature (slices, matrices, graphs, configs), so this module
//! normalizes them behind one shape:
//!
//! * [`Kernel`] names a kernel ([`Kernel::ALL`] is the sweep set),
//! * [`Workload::prepare`] builds the kernel's input for a size budget and
//!   seed, and computes the expected output via the sequential
//!   implementation,
//! * [`Workload::run_sequential`] / [`Workload::run_mixed`] each perform
//!   **one** timed, validated execution and return its wall-clock duration.
//!
//! Every run is validated against the expected output (exactly for integer
//! kernels, to ~1e-9 relative error for the floating-point ones, whose
//! chunked evaluation can legally reassociate sums), so a broken kernel can
//! never report a good time.
//!
//! ```
//! use teamsteal_apps::harness::{Kernel, Workload};
//! use teamsteal_core::Scheduler;
//!
//! let scheduler = Scheduler::with_threads(2);
//! let workload = Workload::prepare(Kernel::Reduce, 50_000, 42);
//! let seq = workload.run_sequential();
//! let mixed = workload.run_mixed(&scheduler);
//! assert!(seq > std::time::Duration::ZERO);
//! assert!(mixed > std::time::Duration::ZERO);
//! ```

use std::time::Duration;

use teamsteal_core::Scheduler;
use teamsteal_data::Distribution;
use teamsteal_util::rng::Xoshiro256;
use teamsteal_util::timing::time;

use crate::bfs::{bfs_mixed_with, bfs_sequential, CsrGraph};
use crate::histogram::{histogram_mixed_with, histogram_sequential};
use crate::matmul::{matmul_mixed_with, matmul_sequential, Matrix};
use crate::reduce::team_reduce_with;
use crate::scan::scan_with;
use crate::stencil::{jacobi_mixed, jacobi_sequential, StencilConfig};

/// The application kernels covered by the perf harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Team-parallel sum reduction ([`crate::reduce`]).
    Reduce,
    /// Inclusive prefix sum ([`crate::scan`]).
    Scan,
    /// Blocked dense matrix multiplication ([`crate::matmul`]).
    MatMul,
    /// Iterative 1-D Jacobi stencil ([`crate::stencil`]).
    Stencil,
    /// Level-synchronous breadth-first search ([`crate::bfs`]).
    Bfs,
    /// Bucket counting ([`crate::histogram`]).
    Histogram,
}

impl Kernel {
    /// Every kernel, in the order the perf harness sweeps them.
    pub const ALL: [Kernel; 6] = [
        Kernel::Reduce,
        Kernel::Scan,
        Kernel::MatMul,
        Kernel::Stencil,
        Kernel::Bfs,
        Kernel::Histogram,
    ];

    /// Stable lowercase name used in reports and on the command line.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Reduce => "reduce",
            Kernel::Scan => "scan",
            Kernel::MatMul => "matmul",
            Kernel::Stencil => "stencil",
            Kernel::Bfs => "bfs",
            Kernel::Histogram => "histogram",
        }
    }
}

/// Number of Jacobi sweeps every stencil workload performs.
const STENCIL_SWEEPS: usize = 10;

/// Histogram bucket count.
const HISTOGRAM_BUCKETS: usize = 256;

/// Prepared input plus expected output of one kernel.
enum Payload {
    /// Reduce input with the expected sum.
    ReduceInts { data: Vec<u64>, expected_sum: u64 },
    /// Scan input with the expected inclusive prefix sums.
    ScanInts {
        data: Vec<u64>,
        expected_scan: Vec<u64>,
    },
    /// Histogram keys with expected bucket counts.
    Keys {
        data: Vec<u32>,
        expected: Vec<u64>,
    },
    /// Stencil grid with the expected post-iteration grid.
    Grid {
        data: Vec<f64>,
        config: StencilConfig,
        expected: Vec<f64>,
    },
    /// Matmul operands with the expected product.
    Matrices {
        a: Matrix,
        b: Matrix,
        expected: Matrix,
    },
    /// BFS graph with the expected distance vector.
    Graph {
        graph: CsrGraph,
        expected: Vec<u32>,
    },
}

/// A prepared, validated kernel workload with uniform timed-run entry
/// points.  See the [module docs](self) for the contract.
pub struct Workload {
    kernel: Kernel,
    size: usize,
    min_per_member: usize,
    payload: Payload,
}

impl Workload {
    /// Prepares the input for `kernel` at roughly `size` elements of work,
    /// deterministically from `seed`, and computes the expected output.
    ///
    /// `size` is the element count for the linear kernels (reduce, scan,
    /// histogram, stencil) and a work budget for the others: matmul uses
    /// square operands of dimension `2·∛size` and BFS a `√size × √size` grid
    /// graph.  The per-member team threshold scales down with `size` so that
    /// even smoke-sized workloads exercise the team path.
    pub fn prepare(kernel: Kernel, size: usize, seed: u64) -> Self {
        let size = size.max(16);
        // Thresholds tuned so that a perf-sized run (~2^19 elements) uses
        // the kernels' defaults while a smoke-sized run still builds teams.
        let min_per_member = (size / 16).clamp(128, 8 * 1024);
        let mut rng = Xoshiro256::new(seed ^ 0x7ea_57ea1);
        let payload = match kernel {
            Kernel::Reduce => {
                let data: Vec<u64> = (0..size).map(|_| rng.next_u64() % 1_000_003).collect();
                let expected_sum = data.iter().sum();
                Payload::ReduceInts { data, expected_sum }
            }
            Kernel::Scan => {
                let data: Vec<u64> = (0..size).map(|_| rng.next_u64() % 1_000_003).collect();
                let mut expected_scan = Vec::with_capacity(size);
                let mut acc = 0u64;
                for &x in &data {
                    acc += x;
                    expected_scan.push(acc);
                }
                Payload::ScanInts {
                    data,
                    expected_scan,
                }
            }
            Kernel::Histogram => {
                let data = Distribution::Random.generate(size, 8, seed);
                let expected = histogram_sequential(&data, HISTOGRAM_BUCKETS);
                Payload::Keys { data, expected }
            }
            Kernel::Stencil => {
                let data: Vec<f64> = (0..size).map(|_| rng.next_f64()).collect();
                let config = StencilConfig {
                    sweeps: STENCIL_SWEEPS,
                    alpha: 0.25,
                    min_cells_per_member: min_per_member,
                };
                let expected = jacobi_sequential(&data, &config);
                Payload::Grid {
                    data,
                    config,
                    expected,
                }
            }
            Kernel::MatMul => {
                let dim = (((size as f64).cbrt() as usize) * 2).max(8);
                let mut gen = |_r: usize, _c: usize| rng.next_f64() - 0.5;
                let a = Matrix::from_fn(dim, dim, &mut gen);
                let b = Matrix::from_fn(dim, dim, &mut gen);
                let expected = matmul_sequential(&a, &b);
                Payload::Matrices { a, b, expected }
            }
            Kernel::Bfs => {
                let side = ((size as f64).sqrt() as usize).max(4);
                let graph = CsrGraph::grid(side, side);
                let expected = bfs_sequential(&graph, 0);
                Payload::Graph { graph, expected }
            }
        };
        Workload {
            kernel,
            size,
            min_per_member,
            payload,
        }
    }

    /// The kernel this workload was prepared for.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The size budget the workload was prepared with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// One timed execution of the sequential implementation.
    ///
    /// # Panics
    ///
    /// Panics if the output does not match the expected output computed at
    /// [`Workload::prepare`] time.
    pub fn run_sequential(&self) -> Duration {
        match &self.payload {
            Payload::ReduceInts { data, expected_sum } => {
                let (d, total) = time(|| data.iter().sum::<u64>());
                assert_eq!(total, *expected_sum, "sequential reduce mismatch");
                d
            }
            Payload::ScanInts {
                data,
                expected_scan,
            } => {
                let (d, out) = time(|| {
                    let mut out = Vec::with_capacity(data.len());
                    let mut acc = 0u64;
                    for &x in data {
                        acc += x;
                        out.push(acc);
                    }
                    out
                });
                assert_eq!(&out, expected_scan, "sequential scan mismatch");
                d
            }
            Payload::Keys { data, expected } => {
                let (d, out) = time(|| histogram_sequential(data, HISTOGRAM_BUCKETS));
                assert_eq!(&out, expected, "sequential histogram mismatch");
                d
            }
            Payload::Grid {
                data,
                config,
                expected,
            } => {
                let (d, out) = time(|| jacobi_sequential(data, config));
                assert_grids_close(&out, expected, "sequential stencil");
                d
            }
            Payload::Matrices { a, b, expected } => {
                let (d, out) = time(|| matmul_sequential(a, b));
                assert!(
                    out.max_abs_diff(expected) <= matmul_tolerance(a),
                    "sequential matmul mismatch"
                );
                d
            }
            Payload::Graph { graph, expected } => {
                let (d, out) = time(|| bfs_sequential(graph, 0));
                assert_eq!(&out, expected, "sequential BFS mismatch");
                d
            }
        }
    }

    /// One timed execution of the mixed-mode implementation on `scheduler`.
    ///
    /// Only the kernel itself is timed; output buffers are allocated and the
    /// result is validated outside the timed region.  Capture
    /// [`Scheduler::metrics`] around this call to attribute scheduler events
    /// to the run.
    ///
    /// # Panics
    ///
    /// Panics if the output does not match the expected output computed at
    /// [`Workload::prepare`] time.
    pub fn run_mixed(&self, scheduler: &Scheduler) -> Duration {
        match &self.payload {
            Payload::ReduceInts { data, expected_sum } => {
                let (d, total) = time(|| {
                    team_reduce_with(scheduler, data, 0u64, |a, b| a + b, self.min_per_member)
                });
                assert_eq!(total, *expected_sum, "mixed reduce mismatch");
                d
            }
            Payload::ScanInts {
                data,
                expected_scan,
            } => {
                let mut out = vec![0u64; data.len()];
                let (d, ()) = time(|| {
                    scan_with(
                        scheduler,
                        data,
                        &mut out,
                        0u64,
                        |a, b| a + b,
                        true,
                        self.min_per_member,
                    )
                });
                assert_eq!(&out, expected_scan, "mixed scan mismatch");
                d
            }
            Payload::Keys { data, expected } => {
                let (d, out) = time(|| {
                    histogram_mixed_with(scheduler, data, HISTOGRAM_BUCKETS, self.min_per_member)
                });
                assert_eq!(&out, expected, "mixed histogram mismatch");
                d
            }
            Payload::Grid {
                data,
                config,
                expected,
            } => {
                let (d, out) = time(|| jacobi_mixed(scheduler, data, config));
                assert_grids_close(&out, expected, "mixed stencil");
                d
            }
            Payload::Matrices { a, b, expected } => {
                let (d, out) = time(|| {
                    // The flops threshold mirrors `min_per_member`, scaled by
                    // the ~2·k flops each output element costs.
                    matmul_mixed_with(scheduler, a, b, self.min_per_member * 2 * a.cols())
                });
                assert!(
                    out.max_abs_diff(expected) <= matmul_tolerance(a),
                    "mixed matmul mismatch"
                );
                d
            }
            Payload::Graph { graph, expected } => {
                let (d, out) = time(|| bfs_mixed_with(scheduler, graph, 0, self.min_per_member));
                assert_eq!(&out, expected, "mixed BFS mismatch");
                d
            }
        }
    }
}

/// Absolute tolerance for matmul validation: chunked team execution may
/// reassociate the `k`-dimension sum, so exact equality is not guaranteed.
fn matmul_tolerance(a: &Matrix) -> f64 {
    1e-9 * a.cols() as f64
}

fn assert_grids_close(out: &[f64], expected: &[f64], what: &str) {
    assert_eq!(out.len(), expected.len(), "{what}: length mismatch");
    for (i, (&x, &y)) in out.iter().zip(expected).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
            "{what}: cell {i} diverged ({x} vs {y})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_lowercase() {
        let mut labels: Vec<&str> = Kernel::ALL.iter().map(|k| k.label()).collect();
        assert!(labels.iter().all(|l| *l == l.to_lowercase()));
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Kernel::ALL.len());
    }

    #[test]
    fn every_kernel_prepares_runs_and_validates() {
        let scheduler = Scheduler::with_threads(2);
        for kernel in Kernel::ALL {
            let workload = Workload::prepare(kernel, 30_000, 11);
            assert_eq!(workload.kernel(), kernel);
            let seq = workload.run_sequential();
            let mixed = workload.run_mixed(&scheduler);
            assert!(seq > Duration::ZERO, "{}", kernel.label());
            assert!(mixed > Duration::ZERO, "{}", kernel.label());
        }
    }

    #[test]
    fn preparation_is_deterministic_in_the_seed() {
        let a = Workload::prepare(Kernel::Reduce, 10_000, 5);
        let b = Workload::prepare(Kernel::Reduce, 10_000, 5);
        let (
            Payload::ReduceInts { expected_sum: sa, .. },
            Payload::ReduceInts { expected_sum: sb, .. },
        ) = (&a.payload, &b.payload)
        else {
            panic!("reduce payload is ReduceInts");
        };
        assert_eq!(sa, sb);
        let c = Workload::prepare(Kernel::Reduce, 10_000, 6);
        let Payload::ReduceInts { expected_sum: sc, .. } = &c.payload else {
            panic!("reduce payload is ReduceInts");
        };
        assert_ne!(sa, sc, "different seeds must give different inputs");
    }

    #[test]
    fn mixed_runs_build_teams_at_bench_sizes() {
        // The thresholds must let teams form for the sizes the perf harness
        // uses, otherwise the recorded scheduler metrics are vacuous.
        let scheduler = Scheduler::with_threads(2);
        let workload = Workload::prepare(Kernel::Reduce, 64 * 1024, 3);
        let before = scheduler.metrics();
        workload.run_mixed(&scheduler);
        let delta = scheduler.metrics().delta_since(&before);
        assert!(
            delta.teams_formed > 0,
            "a 64k-element reduce on 2 threads should run as a team task"
        );
    }
}
