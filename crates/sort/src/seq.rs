//! Sequential baselines: the standard-library reference sort and the
//! handwritten sequential Quicksort ("SeqQS").

use crate::SortConfig;

/// The "best available sequential sort" the paper normalizes all speedups to
/// (its tables call it *Seq/STL*; `std::sort` there, `slice::sort_unstable`
/// — pattern-defeating quicksort — here).
pub fn std_sort(data: &mut [u32]) {
    data.sort_unstable();
}

/// Handwritten sequential Quicksort with the same cutoff as the parallel
/// variants (the paper's *SeqQS* column): median-of-three pivot selection,
/// two-pointer partitioning, recursion into the smaller side first and a
/// switch to [`std_sort`] below the cutoff.
pub fn sequential_quicksort(data: &mut [u32], config: &SortConfig) {
    quicksort_recursive(data, config.cutoff.max(1));
}

fn quicksort_recursive(mut data: &mut [u32], cutoff: usize) {
    loop {
        let n = data.len();
        if n <= cutoff {
            std_sort(data);
            return;
        }
        let pivot = median_of_three(data);
        let (left_len, right_start) = split_around(data, pivot);
        // Recurse into the smaller part, loop on the larger one so the stack
        // depth stays O(log n) even for adversarial inputs.
        let whole = std::mem::take(&mut data);
        let (left, rest) = whole.split_at_mut(left_len);
        let right = &mut rest[right_start - left_len..];
        if left.len() < right.len() {
            quicksort_recursive(left, cutoff);
            data = right;
        } else {
            quicksort_recursive(right, cutoff);
            data = left;
        }
    }
}

/// Median of the first, middle and last element — the pivot selection used by
/// every Quicksort variant in this crate.
pub fn median_of_three(data: &[u32]) -> u32 {
    let n = data.len();
    debug_assert!(n >= 1);
    let a = data[0];
    let b = data[n / 2];
    let c = data[n - 1];
    a.max(b).min(a.min(b).max(c))
}

/// Partitions `data` around the pivot *value* and returns
/// `(left_len, right_start)` such that sorting `[0, left_len)` and
/// `[right_start, n)` independently sorts the whole slice; the (possibly
/// empty) gap `[left_len, right_start)` consists of elements equal to the
/// pivot that are already in their final position.
///
/// In the common case this is a single two-pointer pass splitting into
/// `≤ pivot | > pivot`.  Only when every element is `≤ pivot` (e.g. the pivot
/// is the maximum, or the slice is constant) a second pass separates the
/// elements equal to the pivot so both recursion ranges are strictly smaller
/// than the input — this is what keeps duplicate-heavy inputs from
/// degenerating into infinite recursion.
pub fn split_around(data: &mut [u32], pivot: u32) -> (usize, usize) {
    let le = partition_by(data, |x| x <= pivot);
    if le < data.len() {
        (le, le)
    } else {
        // Everything is <= pivot (e.g. pivot is the maximum): split off the
        // equals so the recursion strictly shrinks.
        let lt = partition_by(data, |x| x < pivot);
        (lt, data.len())
    }
}

/// In-place two-pointer partition by a predicate: afterwards every element
/// satisfying `pred` precedes every element that does not; returns the number
/// of elements satisfying `pred`.
pub fn partition_by(data: &mut [u32], pred: impl Fn(u32) -> bool) -> usize {
    let mut i = 0usize;
    let mut j = data.len();
    loop {
        while i < j && pred(data[i]) {
            i += 1;
        }
        while i < j && !pred(data[j - 1]) {
            j -= 1;
        }
        if i >= j {
            return i;
        }
        data.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    #[test]
    fn std_sort_sorts() {
        let mut v = vec![5u32, 3, 9, 1, 1, 0];
        std_sort(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn median_of_three_examples() {
        assert_eq!(median_of_three(&[1, 2, 3]), 2);
        assert_eq!(median_of_three(&[3, 2, 1]), 2);
        assert_eq!(median_of_three(&[2, 9, 2]), 2);
        assert_eq!(median_of_three(&[7]), 7);
        assert_eq!(median_of_three(&[7, 7]), 7);
    }

    #[test]
    fn partition_by_basic() {
        let mut v = vec![4u32, 1, 7, 2, 9, 3];
        let k = partition_by(&mut v, |x| x <= 3);
        assert_eq!(k, 3);
        assert!(v[..k].iter().all(|&x| x <= 3));
        assert!(v[k..].iter().all(|&x| x > 3));
    }

    #[test]
    fn partition_by_all_or_nothing() {
        let mut v = vec![1u32, 2, 3];
        assert_eq!(partition_by(&mut v, |_| true), 3);
        assert_eq!(partition_by(&mut v, |_| false), 0);
        let mut empty: Vec<u32> = vec![];
        assert_eq!(partition_by(&mut empty, |_| true), 0);
    }

    #[test]
    fn split_around_handles_all_equal_input() {
        let mut v = vec![5u32; 100];
        let (lt, ge) = split_around(&mut v, 5);
        assert_eq!(lt, 0);
        assert_eq!(ge, 100);
    }

    #[test]
    fn split_around_ranges_sort_independently() {
        let mut v: Vec<u32> = (0..1000).map(|i| (i * 7919) % 50).collect();
        let original = v.clone();
        let pivot = 25;
        let (left_len, right_start) = split_around(&mut v, pivot);
        assert!(left_len <= right_start && right_start <= v.len());
        assert!(v[..left_len].iter().all(|&x| x <= pivot));
        assert!(v[left_len..right_start].iter().all(|&x| x == pivot));
        assert!(v[right_start..].iter().all(|&x| x >= pivot));
        // Sorting the two recursion ranges independently sorts the slice.
        v[..left_len].sort_unstable();
        v[right_start..].sort_unstable();
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));
    }

    #[test]
    fn sequential_quicksort_sorts_every_distribution() {
        let cfg = SortConfig::default();
        for d in Distribution::ALL {
            let original = d.generate(50_000, 8, 11);
            let mut v = original.clone();
            sequential_quicksort(&mut v, &cfg);
            assert!(is_sorted(&v), "{d:?} not sorted");
            assert!(is_permutation_of(&original, &v), "{d:?} lost elements");
        }
    }

    #[test]
    fn sequential_quicksort_edge_cases() {
        let cfg = SortConfig { cutoff: 4, ..SortConfig::default() };
        for v in [vec![], vec![1u32], vec![2, 1], vec![3, 3, 3, 3, 3, 3, 3, 3, 3]] {
            let mut s = v.clone();
            sequential_quicksort(&mut s, &cfg);
            assert!(is_sorted(&s));
            assert!(is_permutation_of(&v, &s));
        }
        // Already sorted and reverse sorted, larger than the cutoff.
        let mut asc: Vec<u32> = (0..10_000).collect();
        sequential_quicksort(&mut asc, &cfg);
        assert!(is_sorted(&asc));
        let mut desc: Vec<u32> = (0..10_000).rev().collect();
        sequential_quicksort(&mut desc, &cfg);
        assert!(is_sorted(&desc));
    }

    proptest! {
        #[test]
        fn quicksort_matches_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..2000)) {
            let mut reference = v.clone();
            reference.sort_unstable();
            sequential_quicksort(&mut v, &SortConfig { cutoff: 8, ..SortConfig::default() });
            prop_assert_eq!(v, reference);
        }

        #[test]
        fn partition_by_is_a_partition(mut v in proptest::collection::vec(any::<u32>(), 0..500), pivot in any::<u32>()) {
            let original = v.clone();
            let k = partition_by(&mut v, |x| x <= pivot);
            prop_assert!(v[..k].iter().all(|&x| x <= pivot));
            prop_assert!(v[k..].iter().all(|&x| x > pivot));
            prop_assert!(is_permutation_of(&original, &v));
        }
    }
}
