//! Mixed-mode parallel Quicksort — the paper's Algorithm 11 ("MMPar").
//!
//! ```text
//! mmqsort(data, n):
//!     if np = 1: return qsort(data, n)                  // Algorithm 10
//!     pivot <- parallel_partition(data, n)              // team task
//!     if localId = 0:
//!         async(getBestNp(pivot))       mmqsort(data, pivot)
//!         async(getBestNp(n - pivot-1)) mmqsort(data + pivot + 1, n - pivot - 1)
//!         sync
//! ```
//!
//! The partitioning step is a data-parallel task executed by a team of
//! `np = getBestNp(n)` threads built by the scheduler; the recursion spawns
//! smaller teams (only powers of two, as in the paper) until [`best_np`]
//! returns 1, at which point the classic fork-join Quicksort
//! ([`crate::fork`]) takes over.  There is no separate `sync`: the scheduler
//! scope that submitted the root task detects global completion.

use std::sync::Arc;

use teamsteal_core::{Scheduler, TaskContext};
use teamsteal_util::bits::prev_pow2;
use teamsteal_util::SendMutPtr;

use crate::fork::sort_task;
use crate::parallel_partition::ParallelPartitioner;
use crate::seq::{median_of_three, partition_by};
use crate::SortConfig;

/// The paper's `getBestNp(n)`: the number of threads to use for the
/// data-parallel partitioning of `n` elements — the largest power of two such
/// that every thread still processes at least
/// [`SortConfig::min_blocks_per_thread`] blocks, clamped to the number of
/// scheduler threads.  Returns 1 when data-parallel partitioning is not worth
/// its overhead (the caller then falls back to Algorithm 10).
pub fn best_np(n: usize, num_threads: usize, config: &SortConfig) -> usize {
    if num_threads <= 1 {
        return 1;
    }
    let blocks = n / config.block_size.max(1);
    let by_blocks = blocks / config.min_blocks_per_thread.max(1);
    let cap = by_blocks.min(num_threads);
    if cap <= 1 {
        1
    } else {
        prev_pow2(cap)
    }
}

/// Sorts `data` with the mixed-mode parallel Quicksort (Algorithm 11) on the
/// given scheduler.  Blocks until the array is fully sorted.
pub fn mixed_mode_sort(scheduler: &Scheduler, data: &mut [u32], config: &SortConfig) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let ptr = SendMutPtr::from_slice(data);
    let config = Arc::new(config.clone());
    let p = scheduler.num_threads();
    let np = best_np(n, p, &config);
    scheduler.scope(|scope| {
        if np <= 1 {
            let config = Arc::clone(&config);
            scope.spawn(move |ctx| sort_task(ctx, ptr, n, &config));
        } else {
            scope.spawn_team(np, mm_task(ptr, n, p, Arc::clone(&config)));
        }
    });
}

/// Builds the team-task closure for one mixed-mode recursion step over
/// `ptr[0 .. n]`.
///
/// The pivot is chosen (median of three) by the spawner, which at that point
/// has exclusive access to the subrange; the per-step
/// [`ParallelPartitioner`] is created here as well so all team members share
/// it through the captured `Arc`.
fn mm_task(
    ptr: SendMutPtr<u32>,
    n: usize,
    num_threads: usize,
    config: Arc<SortConfig>,
) -> impl Fn(&TaskContext<'_>) + Send + Sync + 'static {
    // SAFETY: the spawner owns ptr[0..n] exclusively until the spawned task
    // starts running.
    let pivot = median_of_three(unsafe { ptr.slice_mut(n) });
    let partitioner = Arc::new(ParallelPartitioner::new(n, config.block_size, num_threads));
    move |ctx: &TaskContext<'_>| {
        let split = partitioner.run(ctx, ptr, pivot);
        if ctx.local_id() != 0 {
            // Algorithm 11: only local id 0 launches the subtasks.
            return;
        }
        if split == n {
            // Degenerate case: every element is <= pivot (duplicate-heavy
            // input).  Split off the elements equal to the pivot — they are
            // already in their final position — and recurse on the rest only.
            // SAFETY: the team task owns ptr[0..n]; all other members are
            // done with phase 1 (the partitioner's barriers ensure that).
            let data = unsafe { ptr.slice_mut(n) };
            let lt = partition_by(data, |x| x < pivot);
            spawn_recursive(ctx, ptr, lt, &config);
        } else {
            spawn_recursive(ctx, ptr, split, &config);
            // SAFETY: split <= n, offset stays inside the allocation.
            let right = unsafe { ptr.add(split) };
            spawn_recursive(ctx, right, n - split, &config);
        }
    }
}

/// Spawns the sort of one subrange, choosing between another mixed-mode team
/// task and the fork-join Quicksort based on [`best_np`].
fn spawn_recursive(ctx: &TaskContext<'_>, ptr: SendMutPtr<u32>, len: usize, config: &Arc<SortConfig>) {
    if len <= 1 {
        return;
    }
    let np = best_np(len, ctx.num_threads(), config);
    if np <= 1 {
        let config = Arc::clone(config);
        ctx.spawn(move |ctx| sort_task(ctx, ptr, len, &config));
    } else {
        ctx.spawn_team(np, mm_task(ptr, len, ctx.num_threads(), Arc::clone(config)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamsteal_core::StealPolicy;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    #[test]
    fn best_np_policy() {
        let cfg = SortConfig {
            cutoff: 512,
            block_size: 1024,
            min_blocks_per_thread: 16,
        };
        // Too little data: stay sequential.
        assert_eq!(best_np(10_000, 8, &cfg), 1);
        // 1M elements = 1024 blocks = enough for 64 threads at 16 blocks each,
        // but clamped to the machine size.
        assert_eq!(best_np(1 << 20, 8, &cfg), 8);
        assert_eq!(best_np(1 << 20, 16, &cfg), 16);
        assert_eq!(best_np(1 << 20, 128, &cfg), 64);
        // Only powers of two are returned.
        assert_eq!(best_np(1 << 20, 6, &cfg), 4);
        assert_eq!(best_np(1 << 20, 1, &cfg), 1);
        // Paper parameters need correspondingly more data per thread.
        let paper = SortConfig::paper();
        assert_eq!(best_np(10_000_000, 8, &paper), 8);
        assert_eq!(best_np(1_000_000, 8, &paper), 1);
    }

    fn check_mm_sort(scheduler: &Scheduler, n: usize, config: &SortConfig, seed: u64) {
        for d in Distribution::ALL {
            let original = d.generate(n, scheduler.num_threads(), seed);
            let mut v = original.clone();
            mixed_mode_sort(scheduler, &mut v, config);
            assert!(is_sorted(&v), "{d:?} not sorted (n={n})");
            assert!(is_permutation_of(&original, &v), "{d:?} corrupted (n={n})");
        }
    }

    #[test]
    fn sorts_with_a_small_config_on_four_threads() {
        let s = Scheduler::with_threads(4);
        let cfg = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 4,
        };
        check_mm_sort(&s, 200_000, &cfg, 11);
        // Teams must actually have been built for the partitioning step.
        let m = s.metrics();
        assert!(m.teams_formed > 0, "mixed-mode sort should form teams");
        assert!(m.team_tasks_executed > 0);
    }

    #[test]
    fn sorts_on_two_threads() {
        let s = Scheduler::with_threads(2);
        let cfg = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 4,
        };
        check_mm_sort(&s, 100_000, &cfg, 12);
    }

    #[test]
    fn sorts_on_non_power_of_two_threads() {
        let s = Scheduler::with_threads(3);
        let cfg = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 4,
        };
        check_mm_sort(&s, 150_000, &cfg, 13);
    }

    #[test]
    fn sorts_with_randomized_within_level_stealing() {
        let s = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::RandomizedWithinLevel)
            .build();
        let cfg = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 4,
        };
        check_mm_sort(&s, 150_000, &cfg, 14);
    }

    #[test]
    fn falls_back_to_fork_join_for_small_inputs() {
        let s = Scheduler::with_threads(4);
        check_mm_sort(&s, 5_000, &SortConfig::default(), 15);
        let m = s.metrics();
        assert_eq!(
            m.teams_formed, 0,
            "small inputs must not pay the team-building overhead"
        );
    }

    #[test]
    fn duplicate_heavy_input_terminates_and_sorts() {
        let s = Scheduler::with_threads(4);
        let cfg = SortConfig {
            cutoff: 128,
            block_size: 256,
            min_blocks_per_thread: 2,
        };
        let original: Vec<u32> = (0..100_000).map(|i| (i % 3) as u32).collect();
        let mut v = original.clone();
        mixed_mode_sort(&s, &mut v, &cfg);
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));
        // Fully constant input as the extreme case.
        let mut constant = vec![7u32; 50_000];
        mixed_mode_sort(&s, &mut constant, &cfg);
        assert!(constant.iter().all(|&x| x == 7));
    }

    #[test]
    fn tiny_inputs_and_reuse() {
        let s = Scheduler::with_threads(4);
        for v in [vec![], vec![1u32], vec![2, 1]] {
            let mut sorted = v.clone();
            mixed_mode_sort(&s, &mut sorted, &SortConfig::default());
            assert!(is_sorted(&sorted));
        }
        for round in 0..3 {
            check_mm_sort(
                &s,
                80_000,
                &SortConfig {
                    cutoff: 256,
                    block_size: 512,
                    min_blocks_per_thread: 4,
                },
                round,
            );
        }
    }
}
