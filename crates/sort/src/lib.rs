//! Sequential, fork-join and mixed-mode parallel Quicksort on the
//! `teamsteal` scheduler.
//!
//! This crate implements the evaluation workload of the paper (Section 5):
//!
//! * [`seq`] — the sequential baselines: the standard-library sort (the
//!   paper's "Seq/STL" reference, used both as the speedup baseline and as
//!   the cutoff sorter) and a handwritten sequential Quicksort with the same
//!   cutoff ("SeqQS").
//! * [`fork`] — the classic task-parallel Quicksort of Algorithm 10:
//!   sequential partitioning, two spawned subtasks per level ("Fork" /
//!   "Randfork" depending on the scheduler's steal policy).
//! * [`parallel_partition`] — the Tsigas–Zhang blocked, data-parallel
//!   partitioning step: block neutralization by a team of threads plus a
//!   sequential cleanup phase.
//! * [`mixed`] — the mixed-mode parallel Quicksort of Algorithm 11
//!   ("MMPar"): data-parallel partitioning by a team whose size follows
//!   `getBestNp`, then recursion with smaller teams until the fork-join
//!   algorithm takes over.
//! * [`sample`] — a purely task-parallel sample sort, the analogue of the
//!   "Cilk sample" baseline, used to separate the effect of team tasks from
//!   the effect of the sorting algorithm.

#![warn(missing_docs)]

pub mod fork;
pub mod mixed;
pub mod parallel_partition;
pub mod sample;
pub mod seq;

pub use fork::fork_join_sort;
pub use mixed::{best_np, mixed_mode_sort};
pub use parallel_partition::ParallelPartitioner;
pub use sample::sample_sort;
pub use seq::{sequential_quicksort, std_sort};

/// Tunable parameters of the Quicksort implementations (Section 5,
/// "Tunable parameters of the Quicksort algorithm").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortConfig {
    /// Subsequences at or below this length are sorted with the standard
    /// library sort (the paper's cutoff of 512 elements).
    pub cutoff: usize,
    /// Block size (in elements) of the data-parallel partitioning step.  The
    /// paper uses 4096 four-byte integers per block.
    pub block_size: usize,
    /// Minimum number of blocks each team member should get on average; the
    /// team size chosen by [`best_np`] is the largest power of two that keeps
    /// this bound (the paper discusses 16–128 blocks per thread).
    pub min_blocks_per_thread: usize,
}

impl Default for SortConfig {
    /// Defaults scaled for the benchmark sizes this repository runs by
    /// default (see DESIGN.md §3): smaller blocks and a lower blocks-per-
    /// thread bound so data-parallel partitioning still kicks in for inputs
    /// of a few hundred thousand elements.
    fn default() -> Self {
        SortConfig {
            cutoff: 512,
            block_size: 1024,
            min_blocks_per_thread: 16,
        }
    }
}

impl SortConfig {
    /// The exact parameter values reported in the paper (cutoff 512, block
    /// size 4096 elements, at least 128 blocks per partitioning thread).
    pub fn paper() -> Self {
        SortConfig {
            cutoff: 512,
            block_size: 4096,
            min_blocks_per_thread: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_scaled_down_paper_config() {
        let d = SortConfig::default();
        let p = SortConfig::paper();
        assert_eq!(d.cutoff, p.cutoff);
        assert!(d.block_size <= p.block_size);
        assert!(d.min_blocks_per_thread <= p.min_blocks_per_thread);
    }
}
