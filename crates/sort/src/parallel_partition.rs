//! The Tsigas–Zhang blocked, data-parallel partitioning step.
//!
//! The array is split into cache-aligned blocks.  During **phase 1** every
//! team member repeatedly takes one block from the left end and one from the
//! right end of the not-yet-claimed range and *neutralizes* them: elements
//! greater than the pivot in the left block are swapped with elements less
//! than or equal to the pivot in the right block until one of the blocks is
//! fully scanned, at which point a fresh block is claimed from that side.
//! When no blocks remain, each member parks its at most one unfinished block
//! per side.
//!
//! **Phase 2/3** (performed by the member with local id 0 after a team
//! barrier) moves the unfinished blocks to the inner boundary of their
//! region, so everything that is not yet classified forms one contiguous
//! range (unfinished blocks + never-claimed middle + the sub-block tail), and
//! finishes it with a sequential two-pointer pass.  The paper replaces the
//! original "thread 0 collects everything" second phase with a
//! producer/consumer exchanger; we keep the sequential cleanup (its work is
//! bounded by `O(team_size · block_size + block_size)` elements) and note the
//! substitution in DESIGN.md.
//!
//! The result is the usual partition contract: a split point `s` such that
//! `data[..s] <= pivot < data[s..]` (with the all-`<= pivot` corner case
//! reported as `s == n` and resolved by the caller).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use teamsteal_core::TaskContext;
use teamsteal_util::SendMutPtr;

use crate::seq::partition_by;

/// Which side of the array a block is claimed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Shared state of one data-parallel partitioning step, used by every member
/// of the team executing it.  A `ParallelPartitioner` is **single use**: it
/// partitions exactly one array once.
pub struct ParallelPartitioner {
    n: usize,
    block_size: usize,
    nblocks: usize,
    /// Packed claim counters: upper 32 bits = blocks taken from the left,
    /// lower 32 bits = blocks taken from the right.
    taken: AtomicU64,
    /// Per-member unfinished left block (index + 1; 0 = none).
    leftover_left: Vec<AtomicUsize>,
    /// Per-member unfinished right block (index + 1; 0 = none).
    leftover_right: Vec<AtomicUsize>,
    /// The final split point, published by local id 0.
    split: AtomicUsize,
}

impl ParallelPartitioner {
    /// Creates the shared state for partitioning an array of `n` elements
    /// with blocks of `block_size` elements and at most `max_team` members.
    pub fn new(n: usize, block_size: usize, max_team: usize) -> Self {
        let block_size = block_size.max(1);
        let nblocks = n / block_size;
        ParallelPartitioner {
            n,
            block_size,
            nblocks,
            taken: AtomicU64::new(0),
            leftover_left: (0..max_team.max(1)).map(|_| AtomicUsize::new(0)).collect(),
            leftover_right: (0..max_team.max(1)).map(|_| AtomicUsize::new(0)).collect(),
            split: AtomicUsize::new(0),
        }
    }

    /// Number of full blocks phase 1 operates on.
    pub fn num_blocks(&self) -> usize {
        self.nblocks
    }

    /// Claims the next block from `side`, if any block is still unclaimed.
    fn acquire_block(&self, side: Side) -> Option<usize> {
        loop {
            let cur = self.taken.load(Ordering::Acquire);
            let left = (cur >> 32) as usize;
            let right = (cur & 0xFFFF_FFFF) as usize;
            if left + right >= self.nblocks {
                return None;
            }
            let (new, index) = match side {
                Side::Left => (((left as u64 + 1) << 32) | right as u64, left),
                Side::Right => (
                    ((left as u64) << 32) | (right as u64 + 1),
                    self.nblocks - 1 - right,
                ),
            };
            if self
                .taken
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(index);
            }
        }
    }

    /// Runs the partitioning step as part of a team task.  Every member of
    /// the team executing the task must call this exactly once with its own
    /// `ctx`; the call returns the split point `s` (`data[..s] <= pivot`,
    /// `data[s..] > pivot`).
    ///
    /// # Safety contract
    ///
    /// `ptr[0 .. n]` (with `n` as passed to [`ParallelPartitioner::new`])
    /// must be valid and owned exclusively by this team task for the duration
    /// of the call.
    pub fn run(&self, ctx: &TaskContext<'_>, ptr: SendMutPtr<u32>, pivot: u32) -> usize {
        let me = ctx.local_id();
        debug_assert!(me < self.leftover_left.len());

        // ---- Phase 1: parallel block neutralization -------------------
        self.neutralize_blocks(me, ptr, pivot);
        ctx.barrier();

        // ---- Phase 2 + 3: sequential cleanup by local id 0 -------------
        if me == 0 {
            let split = self.cleanup(ptr, pivot);
            self.split.store(split, Ordering::Release);
        }
        ctx.barrier();
        self.split.load(Ordering::Acquire)
    }

    fn block_slice<'a>(&self, ptr: SendMutPtr<u32>, block: usize) -> &'a mut [u32] {
        // SAFETY: blocks are disjoint (acquire_block never hands the same
        // index to two claims) and inside ptr[0..n].
        unsafe { ptr.add(block * self.block_size).slice_mut(self.block_size) }
    }

    fn neutralize_blocks(&self, me: usize, ptr: SendMutPtr<u32>, pivot: u32) {
        let bs = self.block_size;
        let mut left: Option<(usize, usize)> = None; // (block, scan position)
        let mut right: Option<(usize, usize)> = None;
        loop {
            if left.is_none() {
                match self.acquire_block(Side::Left) {
                    Some(b) => left = Some((b, 0)),
                    None => break,
                }
            }
            if right.is_none() {
                match self.acquire_block(Side::Right) {
                    Some(b) => right = Some((b, 0)),
                    None => break,
                }
            }
            let (lb, mut i) = left.take().expect("left block present");
            let (rb, mut j) = right.take().expect("right block present");
            let lslice = self.block_slice(ptr, lb);
            let rslice = self.block_slice(ptr, rb);
            loop {
                while i < bs && lslice[i] <= pivot {
                    i += 1;
                }
                while j < bs && rslice[j] > pivot {
                    j += 1;
                }
                if i == bs || j == bs {
                    break;
                }
                std::mem::swap(&mut lslice[i], &mut rslice[j]);
                i += 1;
                j += 1;
            }
            if i < bs {
                left = Some((lb, i));
            }
            if j < bs {
                right = Some((rb, j));
            }
        }
        if let Some((lb, _)) = left {
            self.leftover_left[me].store(lb + 1, Ordering::Release);
        }
        if let Some((rb, _)) = right {
            self.leftover_right[me].store(rb + 1, Ordering::Release);
        }
    }

    /// Swaps the contents of two (disjoint) blocks.
    fn swap_blocks(&self, ptr: SendMutPtr<u32>, a: usize, b: usize) {
        if a == b {
            return;
        }
        let sa = self.block_slice(ptr, a);
        let sb = self.block_slice(ptr, b);
        sa.swap_with_slice(sb);
    }

    /// Moves the unfinished blocks of one side into that side's innermost
    /// block slots so the unclassified data becomes contiguous.  Returns the
    /// number of unfinished blocks on that side.
    fn compact_leftovers(
        &self,
        ptr: SendMutPtr<u32>,
        leftovers: &[usize],
        region_start: usize,
        region_len: usize,
        innermost_last: bool,
    ) -> usize {
        let count = leftovers.len();
        if count == 0 {
            return 0;
        }
        debug_assert!(count <= region_len);
        // Target slots: the `count` innermost block indices of the region.
        let targets: Vec<usize> = if innermost_last {
            // Left region: innermost = highest indices.
            (region_start + region_len - count..region_start + region_len).collect()
        } else {
            // Right region: innermost = lowest indices.
            (region_start..region_start + count).collect()
        };
        let in_target = |b: usize| targets.contains(&b);
        // Leftover blocks already inside the target zone stay; the others are
        // swapped with target slots currently holding finished blocks.
        let mut free_targets: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|t| !leftovers.contains(t))
            .collect();
        for &block in leftovers.iter() {
            if in_target(block) {
                continue;
            }
            let target = free_targets.pop().expect("enough free target slots");
            self.swap_blocks(ptr, block, target);
        }
        count
    }

    /// Phase 2 + 3: make the unclassified range contiguous and finish it with
    /// a sequential pass.  Returns the global split point.
    fn cleanup(&self, ptr: SendMutPtr<u32>, pivot: u32) -> usize {
        let bs = self.block_size;
        let cur = self.taken.load(Ordering::Acquire);
        let taken_left = (cur >> 32) as usize;
        let taken_right = (cur & 0xFFFF_FFFF) as usize;
        debug_assert!(taken_left + taken_right <= self.nblocks);

        let lo_left: Vec<usize> = self
            .leftover_left
            .iter()
            .filter_map(|a| {
                let v = a.load(Ordering::Acquire);
                (v > 0).then(|| v - 1)
            })
            .collect();
        let lo_right: Vec<usize> = self
            .leftover_right
            .iter()
            .filter_map(|a| {
                let v = a.load(Ordering::Acquire);
                (v > 0).then(|| v - 1)
            })
            .collect();

        let ll = self.compact_leftovers(ptr, &lo_left, 0, taken_left, true);
        let rl = self.compact_leftovers(
            ptr,
            &lo_right,
            self.nblocks - taken_right,
            taken_right,
            false,
        );

        // The contiguous unclassified range: unfinished left blocks, the
        // never-claimed middle, and the unfinished right blocks.
        let unknown_start = (taken_left - ll) * bs;
        let unknown_end = (self.nblocks - taken_right + rl) * bs;
        debug_assert!(unknown_start <= unknown_end);
        // SAFETY: exclusive access (phase 1 is over; only local id 0 runs this).
        let unknown =
            unsafe { ptr.add(unknown_start).slice_mut(unknown_end - unknown_start) };
        let mut split = unknown_start + partition_by(unknown, |x| x <= pivot);

        // Finally fold in the sub-block tail that phase 1 never touched.
        // Invariant: data[split .. nblocks*bs] > pivot.
        // SAFETY: exclusive access, whole array.
        let data = unsafe { ptr.slice_mut(self.n) };
        for k in self.nblocks * bs..self.n {
            if data[k] <= pivot {
                data.swap(k, split);
                split += 1;
            }
        }
        split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use teamsteal_core::Scheduler;
    use teamsteal_data::{is_permutation_of, Distribution};

    /// Runs the partitioner inside a real team task and checks the partition
    /// contract.
    fn check_partition(scheduler: &Scheduler, team: usize, n: usize, block_size: usize, seed: u64) {
        for d in Distribution::ALL {
            let original = d.generate(n, 8, seed);
            let mut data = original.clone();
            if data.is_empty() {
                continue;
            }
            let pivot = crate::seq::median_of_three(&data);
            let ptr = SendMutPtr::from_slice(&mut data);
            let partitioner = Arc::new(ParallelPartitioner::new(
                n,
                block_size,
                scheduler.num_threads(),
            ));
            let split_seen = Arc::new(AtomicUsize::new(usize::MAX));
            {
                let partitioner = Arc::clone(&partitioner);
                let split_seen = Arc::clone(&split_seen);
                scheduler.run_team(team, move |ctx| {
                    let s = partitioner.run(ctx, ptr, pivot);
                    split_seen.store(s, Ordering::Release);
                });
            }
            let split = split_seen.load(Ordering::Acquire);
            assert!(split <= n);
            assert!(
                data[..split].iter().all(|&x| x <= pivot),
                "{d:?}: left side contains an element above the pivot (n={n}, team={team})"
            );
            assert!(
                data[split..].iter().all(|&x| x > pivot),
                "{d:?}: right side contains an element at or below the pivot (n={n}, team={team})"
            );
            assert!(
                is_permutation_of(&original, &data),
                "{d:?}: partition changed the multiset of elements"
            );
            assert!(split >= 1, "the pivot element itself must land on the left");
        }
    }

    #[test]
    fn partitions_with_a_singleton_team() {
        let s = Scheduler::with_threads(1);
        check_partition(&s, 1, 10_000, 256, 1);
    }

    #[test]
    fn partitions_with_a_team_of_two() {
        let s = Scheduler::with_threads(2);
        check_partition(&s, 2, 50_000, 512, 2);
    }

    #[test]
    fn partitions_with_a_team_of_four() {
        let s = Scheduler::with_threads(4);
        check_partition(&s, 4, 120_000, 1024, 3);
    }

    #[test]
    fn handles_sizes_not_multiple_of_block_size() {
        let s = Scheduler::with_threads(4);
        check_partition(&s, 4, 100_003, 1024, 4);
        check_partition(&s, 2, 1_023, 1024, 5); // fewer elements than one block
        check_partition(&s, 4, 4_097, 4_096, 6);
    }

    #[test]
    fn handles_tiny_blocks_and_many_claims() {
        let s = Scheduler::with_threads(4);
        check_partition(&s, 4, 30_000, 64, 7);
    }

    #[test]
    fn all_elements_below_pivot_reports_full_split() {
        let s = Scheduler::with_threads(2);
        let n = 8_192;
        let mut data = vec![3u32; n];
        let ptr = SendMutPtr::from_slice(&mut data);
        let partitioner = Arc::new(ParallelPartitioner::new(n, 512, 2));
        let split_seen = Arc::new(AtomicUsize::new(0));
        {
            let partitioner = Arc::clone(&partitioner);
            let split_seen = Arc::clone(&split_seen);
            s.run_team(2, move |ctx| {
                let split = partitioner.run(ctx, ptr, 3);
                split_seen.store(split, Ordering::Release);
            });
        }
        assert_eq!(split_seen.load(Ordering::Acquire), n);
    }

    #[test]
    fn acquire_block_never_hands_out_duplicates() {
        let p = ParallelPartitioner::new(64 * 128, 128, 4);
        let mut seen = vec![false; p.num_blocks()];
        let mut toggle = true;
        loop {
            let side = if toggle { Side::Left } else { Side::Right };
            toggle = !toggle;
            match p.acquire_block(side) {
                Some(b) => {
                    assert!(!seen[b], "block {b} handed out twice");
                    seen[b] = true;
                }
                None => break,
            }
        }
        assert!(seen.into_iter().all(|s| s), "every block must be claimed");
    }
}
