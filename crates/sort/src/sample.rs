//! Task-parallel sample sort — an additional parallel baseline.
//!
//! The paper's Cilk++ comparison includes the "Cilk sample" column, the
//! sample-based Quicksort shipped with the Cilk++ distribution.  This module
//! provides an analogous baseline implemented directly on the `teamsteal`
//! scheduler: a classic three-phase sample sort that uses only `r = 1` tasks
//! (pure task parallelism, no teams), so comparing it against the mixed-mode
//! Quicksort isolates the benefit of data-parallel team tasks from the choice
//! of sorting algorithm.
//!
//! Phases:
//!
//! 1. **Sample & split** — sort an oversampled set of keys and pick
//!    `buckets − 1` splitters.
//! 2. **Classify** — one task per input chunk scatters the chunk's elements
//!    into per-chunk bucket lists.
//! 3. **Sort buckets** — one task per bucket concatenates its pieces from all
//!    chunks into the right output window and sorts it.

use std::sync::{Arc, Mutex};

use teamsteal_core::Scheduler;
use teamsteal_util::bits::next_pow2;
use teamsteal_util::{SendConstPtr, SendMutPtr};

use crate::SortConfig;

/// Oversampling factor: how many sample keys are drawn per splitter.
const OVERSAMPLING: usize = 32;

/// Sorts `data` with a task-parallel sample sort on the given scheduler.
///
/// Inputs at or below the configured cutoff are sorted sequentially.  The
/// number of buckets is the number of scheduler threads rounded up to a power
/// of two (at least 2).
pub fn sample_sort(scheduler: &Scheduler, data: &mut [u32], config: &SortConfig) {
    let n = data.len();
    let p = scheduler.num_threads();
    if n <= config.cutoff.max(2) || p <= 1 {
        data.sort_unstable();
        return;
    }
    let buckets = next_pow2(p).max(2);
    let chunks = p;

    // Phase 1: splitters from a deterministic stride sample.
    let sample_size = (buckets * OVERSAMPLING).min(n);
    let stride = (n / sample_size).max(1);
    let mut sample: Vec<u32> = data.iter().step_by(stride).copied().take(sample_size).collect();
    sample.sort_unstable();
    let splitters: Vec<u32> = (1..buckets)
        .map(|b| sample[b * sample.len() / buckets])
        .collect();

    // Phase 2: classify each chunk into per-(chunk, bucket) lists.
    let input = SendConstPtr::from_slice(data);
    let pieces: Arc<Vec<Mutex<Vec<Vec<u32>>>>> =
        Arc::new((0..chunks).map(|_| Mutex::new(Vec::new())).collect());
    let splitters = Arc::new(splitters);
    scheduler.scope(|scope| {
        let chunk_len = n.div_ceil(chunks);
        for c in 0..chunks {
            let start = (c * chunk_len).min(n);
            let len = chunk_len.min(n - start);
            let pieces = Arc::clone(&pieces);
            let splitters = Arc::clone(&splitters);
            scope.spawn(move |_ctx| {
                // SAFETY: the input outlives the scope and is only read here.
                let slice = unsafe { input.slice(n) };
                let mut local: Vec<Vec<u32>> = vec![Vec::new(); buckets];
                for &x in &slice[start..start + len] {
                    let b = splitters.partition_point(|&s| s <= x);
                    local[b].push(x);
                }
                *pieces[c].lock().expect("sample-sort piece poisoned") = local;
            });
        }
    });

    // Bucket sizes and output offsets.
    let mut bucket_sizes = vec![0usize; buckets];
    {
        let locked: Vec<_> = pieces
            .iter()
            .map(|m| m.lock().expect("sample-sort piece poisoned"))
            .collect();
        for chunk in locked.iter() {
            for (b, piece) in chunk.iter().enumerate() {
                bucket_sizes[b] += piece.len();
            }
        }
    }
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        offsets[b + 1] = offsets[b] + bucket_sizes[b];
    }
    debug_assert_eq!(offsets[buckets], n);

    // Phase 3: gather and sort each bucket into its output window.
    let output = SendMutPtr::from_slice(data);
    scheduler.scope(|scope| {
        for b in 0..buckets {
            let start = offsets[b];
            let len = bucket_sizes[b];
            if len == 0 {
                continue;
            }
            let pieces = Arc::clone(&pieces);
            scope.spawn(move |_ctx| {
                // SAFETY: bucket windows [start, start+len) are disjoint.
                let window = unsafe { output.add(start).slice_mut(len) };
                let mut cursor = 0;
                for chunk in pieces.iter() {
                    let chunk = chunk.lock().expect("sample-sort piece poisoned");
                    if chunk.is_empty() {
                        continue;
                    }
                    let piece = &chunk[b];
                    window[cursor..cursor + piece.len()].copy_from_slice(piece);
                    cursor += piece.len();
                }
                debug_assert_eq!(cursor, len);
                window.sort_unstable();
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    fn small_config() -> SortConfig {
        SortConfig {
            cutoff: 128,
            block_size: 256,
            min_blocks_per_thread: 2,
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_sequential() {
        let s = Scheduler::with_threads(4);
        for v in [vec![], vec![1u32], vec![3, 1, 2], (0..100u32).rev().collect()] {
            let mut sorted = v.clone();
            sample_sort(&s, &mut sorted, &SortConfig::default());
            assert!(is_sorted(&sorted));
            assert!(is_permutation_of(&v, &sorted));
        }
    }

    #[test]
    fn sorts_every_distribution() {
        let s = Scheduler::with_threads(4);
        for d in Distribution::ALL {
            let original = d.generate(120_000, 4, 17);
            let mut v = original.clone();
            sample_sort(&s, &mut v, &small_config());
            assert!(is_sorted(&v), "{d:?} not sorted");
            assert!(is_permutation_of(&original, &v), "{d:?} corrupted");
        }
    }

    #[test]
    fn duplicate_heavy_and_constant_inputs() {
        let s = Scheduler::with_threads(4);
        let original: Vec<u32> = (0..80_000).map(|i| (i % 4) as u32).collect();
        let mut v = original.clone();
        sample_sort(&s, &mut v, &small_config());
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));

        let mut constant = vec![9u32; 50_000];
        sample_sort(&s, &mut constant, &small_config());
        assert!(constant.iter().all(|&x| x == 9));
    }

    #[test]
    fn non_power_of_two_threads_and_sizes() {
        let s = Scheduler::with_threads(3);
        let original = Distribution::Staggered.generate(99_991, 3, 23);
        let mut v = original.clone();
        sample_sort(&s, &mut v, &small_config());
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));
    }

    #[test]
    fn single_threaded_scheduler() {
        let s = Scheduler::with_threads(1);
        let original = Distribution::Random.generate(50_000, 1, 29);
        let mut v = original.clone();
        sample_sort(&s, &mut v, &small_config());
        assert!(is_sorted(&v));
        assert!(is_permutation_of(&original, &v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_sample_sort_sorts_arbitrary_vectors(
            data in proptest::collection::vec(any::<u32>(), 0..5_000),
        ) {
            let s = Scheduler::with_threads(2);
            let mut v = data.clone();
            sample_sort(&s, &mut v, &SortConfig { cutoff: 64, block_size: 128, min_blocks_per_thread: 2 });
            prop_assert!(is_sorted(&v));
            prop_assert!(is_permutation_of(&data, &v));
        }
    }
}
