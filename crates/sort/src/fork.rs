//! Task-parallel (fork-join) Quicksort — the paper's Algorithm 10.
//!
//! ```text
//! qsort(data, n):
//!     if n <= CUTOFF: return sequential_sort(data, n)
//!     pivot <- partition(data, n)          // sequential partitioning
//!     async qsort(data, pivot)             // two independent subtasks
//!     async qsort(data + pivot + 1, n - pivot - 1)
//!     sync
//! ```
//!
//! Every task has thread requirement 1, so this is exactly the workload a
//! classical work-stealer handles; run on the `teamsteal` scheduler it is the
//! paper's *Fork* column (deterministic stealing) or *Randfork* column
//! (uniformly random stealing), depending on the scheduler's
//! [`StealPolicy`](teamsteal_core::StealPolicy).
//!
//! The paper's `sync` is realized through the scheduler's scope: the two
//! subsequences are disjoint, so the parent task does not need to wait for
//! its children — global completion is detected when the enclosing
//! [`Scheduler::scope`](teamsteal_core::Scheduler::scope) drains.

use std::sync::Arc;

use teamsteal_core::{Scheduler, TaskContext};
use teamsteal_util::SendMutPtr;

use crate::seq::{median_of_three, split_around, std_sort};
use crate::SortConfig;

/// Sorts `data` with the task-parallel Quicksort of Algorithm 10 on the given
/// scheduler.  Blocks until the array is fully sorted.
pub fn fork_join_sort(scheduler: &Scheduler, data: &mut [u32], config: &SortConfig) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let ptr = SendMutPtr::from_slice(data);
    let config = Arc::new(config.clone());
    scheduler.scope(|scope| {
        let config = Arc::clone(&config);
        scope.spawn(move |ctx| sort_task(ctx, ptr, n, &config));
    });
    // `scope` returns only after every recursively spawned task has finished,
    // so `data` is fully sorted (and no task can outlive the borrow).
}

/// The recursive task body: partition sequentially, spawn the two halves.
///
/// # Safety contract
///
/// `ptr[0 .. n]` must be a valid, exclusively owned region for the duration
/// of this task tree; the recursion only ever hands out disjoint subranges.
pub(crate) fn sort_task(ctx: &TaskContext<'_>, ptr: SendMutPtr<u32>, n: usize, config: &Arc<SortConfig>) {
    // SAFETY: the caller guarantees exclusive ownership of ptr[0..n]; child
    // tasks receive disjoint subranges, so no two tasks alias.
    let data = unsafe { ptr.slice_mut(n) };
    if n <= config.cutoff.max(1) {
        std_sort(data);
        return;
    }
    let pivot = median_of_three(data);
    let (left_len, right_start) = split_around(data, pivot);
    let right_len = n - right_start;
    if left_len > 0 {
        let config = Arc::clone(config);
        ctx.spawn(move |ctx| sort_task(ctx, ptr, left_len, &config));
    }
    if right_len > 0 {
        let config = Arc::clone(config);
        // SAFETY: right_start <= n, so the offset stays inside the allocation.
        let right_ptr = unsafe { ptr.add(right_start) };
        ctx.spawn(move |ctx| sort_task(ctx, right_ptr, right_len, &config));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamsteal_core::StealPolicy;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    fn check_sort(scheduler: &Scheduler, n: usize, seed: u64) {
        for d in Distribution::ALL {
            let original = d.generate(n, scheduler.num_threads(), seed);
            let mut v = original.clone();
            fork_join_sort(scheduler, &mut v, &SortConfig::default());
            assert!(is_sorted(&v), "{d:?} not sorted (n={n})");
            assert!(is_permutation_of(&original, &v), "{d:?} corrupted (n={n})");
        }
    }

    #[test]
    fn sorts_on_a_single_thread() {
        let s = Scheduler::with_threads(1);
        check_sort(&s, 20_000, 1);
    }

    #[test]
    fn sorts_on_four_threads_deterministic() {
        let s = Scheduler::with_threads(4);
        check_sort(&s, 100_000, 2);
    }

    #[test]
    fn sorts_on_three_threads_randomized_within_level() {
        let s = Scheduler::builder()
            .threads(3)
            .steal_policy(StealPolicy::RandomizedWithinLevel)
            .build();
        check_sort(&s, 50_000, 3);
    }

    #[test]
    fn sorts_with_uniform_random_stealing() {
        let s = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::UniformRandom)
            .build();
        check_sort(&s, 50_000, 4);
    }

    #[test]
    fn stealing_actually_happens_on_multiple_workers() {
        let s = Scheduler::with_threads(4);
        let mut v = Distribution::Random.generate(200_000, 4, 5);
        fork_join_sort(&s, &mut v, &SortConfig::default());
        assert!(is_sorted(&v));
        let m = s.metrics();
        assert!(m.steals > 0, "parallel quicksort should trigger steals");
        assert_eq!(m.teams_formed, 0, "fork-join variant never builds teams");
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let s = Scheduler::with_threads(2);
        for v in [vec![], vec![1u32], vec![2, 1], vec![1, 2, 3]] {
            let mut sorted = v.clone();
            fork_join_sort(&s, &mut sorted, &SortConfig::default());
            assert!(is_sorted(&sorted));
            assert!(is_permutation_of(&v, &sorted));
        }
    }

    #[test]
    fn repeated_use_of_the_same_scheduler() {
        let s = Scheduler::with_threads(4);
        for round in 0..5 {
            let original = Distribution::Staggered.generate(30_000, 4, round);
            let mut v = original.clone();
            fork_join_sort(&s, &mut v, &SortConfig::default());
            assert!(is_sorted(&v));
            assert!(is_permutation_of(&original, &v));
        }
    }
}
