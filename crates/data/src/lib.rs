//! Benchmark input distributions and verification helpers.
//!
//! The paper's evaluation (Section 5) sorts 4-byte integers drawn from the
//! four input distributions used by Helman, Bader & JáJá and by Tsigas &
//! Zhang: **uniformly random**, **Gaussian**, **Bucket-sorted** and
//! **Staggered**.  This crate generates those inputs deterministically (same
//! seed ⇒ byte-identical input for every sorting variant, which is how the
//! paper's tables keep the comparison fair) and provides the checkers used by
//! tests and the benchmark harness to validate sorted output.

#![warn(missing_docs)]

use teamsteal_util::rng::Xoshiro256;

/// The input distributions of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniformly random 32-bit values (the paper's *Random*).
    Random,
    /// Approximately Gaussian values: the average of four uniform samples
    /// (the construction used by Helman/Bader/JáJá; the paper's *Gauss*).
    Gauss,
    /// *Bucket sorted*: the input is split into `p` blocks and every block
    /// contains, in order, `n / p²` values from each of the `p` equal value
    /// ranges — globally unsorted but locally "bucketized".
    Buckets,
    /// *Staggered*: the input is split into `p` blocks; block `i` holds
    /// values from a single value range chosen so that ranges of consecutive
    /// blocks are far apart (the classic adversarial input for
    /// sample-partitioning sorts).
    Staggered,
}

impl Distribution {
    /// All four distributions in the order the paper's tables list them.
    pub const ALL: [Distribution; 4] = [
        Distribution::Random,
        Distribution::Gauss,
        Distribution::Buckets,
        Distribution::Staggered,
    ];

    /// Table label used by the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Random => "Random",
            Distribution::Gauss => "Gauss",
            Distribution::Buckets => "Buckets",
            Distribution::Staggered => "Staggered",
        }
    }

    /// Generates `n` values of this distribution.
    ///
    /// `p` is the block parameter of the Buckets / Staggered distributions
    /// (the paper uses the number of hardware threads); it is ignored by
    /// Random and Gauss.  The output is fully determined by
    /// `(self, n, p, seed)`.
    pub fn generate(&self, n: usize, p: usize, seed: u64) -> Vec<u32> {
        let mut rng = Xoshiro256::new(seed ^ 0xD15C_0DE5_EED5_EED5);
        match self {
            Distribution::Random => random(n, &mut rng),
            Distribution::Gauss => gauss(n, &mut rng),
            Distribution::Buckets => buckets(n, p.max(1), &mut rng),
            Distribution::Staggered => staggered(n, p.max(1), &mut rng),
        }
    }
}

fn random(n: usize, rng: &mut Xoshiro256) -> Vec<u32> {
    (0..n).map(|_| rng.next_u32()).collect()
}

fn gauss(n: usize, rng: &mut Xoshiro256) -> Vec<u32> {
    (0..n)
        .map(|_| {
            let sum: u64 = (0..4).map(|_| rng.next_u32() as u64).sum();
            (sum / 4) as u32
        })
        .collect()
}

fn buckets(n: usize, p: usize, rng: &mut Xoshiro256) -> Vec<u32> {
    // p blocks; each block holds p sub-runs, the j-th sub-run containing
    // values from the j-th of p equal ranges of [0, 2^32).
    let range = (u32::MAX as u64 + 1) / p as u64;
    let mut out = Vec::with_capacity(n);
    let block_len = n / p;
    for block in 0..p {
        let this_block = if block == p - 1 { n - block_len * (p - 1) } else { block_len };
        let sub = this_block / p;
        for j in 0..p {
            let lo = j as u64 * range;
            let count = if j == p - 1 { this_block - sub * (p - 1) } else { sub };
            for _ in 0..count {
                out.push((lo + rng.next_below(range.max(1))) as u32);
            }
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

fn staggered(n: usize, p: usize, rng: &mut Xoshiro256) -> Vec<u32> {
    // p blocks; block i draws from range number f(i) where the first half of
    // the blocks map to the odd ranges and the second half to the even ones,
    // so consecutive blocks are far apart in value space.
    let range = (u32::MAX as u64 + 1) / p as u64;
    let mut out = Vec::with_capacity(n);
    let block_len = n / p;
    for block in 0..p {
        let this_block = if block == p - 1 { n - block_len * (p - 1) } else { block_len };
        let target = if block < p / 2 {
            2 * block + 1
        } else {
            2 * (block - p / 2)
        }
        .min(p - 1);
        let lo = target as u64 * range;
        for _ in 0..this_block {
            out.push((lo + rng.next_below(range.max(1))) as u32);
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Returns `true` if `data` is sorted in non-decreasing order.
pub fn is_sorted(data: &[u32]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

/// Returns `true` if `candidate` is a permutation of `original` (checked via
/// sorting copies; intended for tests and harness validation, not hot paths).
pub fn is_permutation_of(original: &[u32], candidate: &[u32]) -> bool {
    if original.len() != candidate.len() {
        return false;
    }
    let mut a = original.to_vec();
    let mut b = candidate.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// The input sizes used in the paper's tables: three decimal sizes and three
/// `2^k − 1` sizes, scaled by dividing the exponents / magnitudes so the
/// whole ladder fits the available machine.
///
/// * `Scale::Paper` reproduces the exact sizes of Tables 1–10
///   (up to 10⁹ elements ≈ 4 GB per array),
/// * `Scale::Medium` divides the ladder by ~2⁶,
/// * `Scale::Ci` divides it by ~2¹⁰ so a full table run finishes in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's original sizes.
    Paper,
    /// Roughly 64× smaller than the paper.
    Medium,
    /// Roughly 1000× smaller than the paper (CI-friendly).
    Ci,
}

impl Scale {
    /// The six input sizes of the paper's tables at this scale, in the order
    /// the tables list them (decimal sizes first, then `2^k − 1` sizes).
    pub fn sizes(&self) -> Vec<usize> {
        match self {
            Scale::Paper => vec![
                10_000_000,
                100_000_000,
                1_000_000_000,
                (1 << 23) - 1,
                (1 << 25) - 1,
                (1 << 27) - 1,
            ],
            Scale::Medium => vec![
                156_250,
                1_562_500,
                15_625_000,
                (1 << 17) - 1,
                (1 << 19) - 1,
                (1 << 21) - 1,
            ],
            Scale::Ci => vec![
                10_000,
                100_000,
                1_000_000,
                (1 << 13) - 1,
                (1 << 15) - 1,
                (1 << 17) - 1,
            ],
        }
    }

    /// Parses a scale name (`paper`, `medium`, `ci`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "paper" | "full" => Some(Scale::Paper),
            "medium" => Some(Scale::Medium),
            "ci" | "small" => Some(Scale::Ci),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(
            Distribution::ALL.map(|d| d.label()),
            ["Random", "Gauss", "Buckets", "Staggered"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        for d in Distribution::ALL {
            let a = d.generate(10_000, 8, 42);
            let b = d.generate(10_000, 8, 42);
            assert_eq!(a, b, "{d:?} must be reproducible");
            let c = d.generate(10_000, 8, 43);
            assert_ne!(a, c, "{d:?} must depend on the seed");
        }
    }

    #[test]
    fn exact_lengths_for_awkward_sizes() {
        for d in Distribution::ALL {
            for &n in &[0usize, 1, 7, 63, 1000, 1017] {
                for &p in &[1usize, 3, 8, 32] {
                    assert_eq!(d.generate(n, p, 1).len(), n, "{d:?} n={n} p={p}");
                }
            }
        }
    }

    #[test]
    fn gauss_is_concentrated_around_the_middle() {
        let data = Distribution::Gauss.generate(100_000, 8, 7);
        let mid_band = data
            .iter()
            .filter(|&&x| (u32::MAX / 4..=3 * (u32::MAX / 4)).contains(&x))
            .count();
        // For the average of 4 uniforms, well over 90% of the mass lies in the
        // central half of the range; uniform data would have ~50%.
        assert!(
            mid_band as f64 > 0.9 * data.len() as f64,
            "only {mid_band} of {} values in the central band",
            data.len()
        );
    }

    #[test]
    fn buckets_blocks_cycle_through_ranges() {
        let p = 4;
        let n = 16_000;
        let data = Distribution::Buckets.generate(n, p, 3);
        // Within the first block (n/p values) the first n/p² values must come
        // from the lowest quarter of the value range.
        let sub = n / (p * p);
        let quarter = u32::MAX / 4;
        assert!(data[..sub].iter().all(|&x| x <= quarter));
        // ... and the last n/p² values of the first block from the top quarter.
        let block = n / p;
        assert!(data[block - sub..block].iter().all(|&x| x >= 3 * quarter - 3));
    }

    #[test]
    fn staggered_first_block_is_far_from_minimum() {
        let p = 8;
        let n = 8_000;
        let data = Distribution::Staggered.generate(n, p, 9);
        let block = n / p;
        let range = (u32::MAX as u64 + 1) / p as u64;
        // Block 0 draws from range index 1, i.e. [range, 2*range).
        assert!(data[..block]
            .iter()
            .all(|&x| (x as u64) >= range && (x as u64) < 2 * range));
    }

    #[test]
    fn sortedness_and_permutation_checkers() {
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2, 5]));
        assert!(!is_sorted(&[2, 1]));
        assert!(is_permutation_of(&[3, 1, 2], &[1, 2, 3]));
        assert!(!is_permutation_of(&[1, 2], &[1, 1]));
        assert!(!is_permutation_of(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn scales_keep_the_ladder_shape() {
        for scale in [Scale::Paper, Scale::Medium, Scale::Ci] {
            let sizes = scale.sizes();
            assert_eq!(sizes.len(), 6);
            // Decimal part ascends, power-of-two part ascends.
            assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
            assert!(sizes[3] < sizes[4] && sizes[4] < sizes[5]);
        }
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("CI"), Some(Scale::Ci));
        assert_eq!(Scale::parse("bogus"), None);
    }

    proptest! {
        #[test]
        fn every_distribution_generates_requested_length(
            n in 0usize..5000, p in 1usize..40, seed in any::<u64>()
        ) {
            for d in Distribution::ALL {
                prop_assert_eq!(d.generate(n, p, seed).len(), n);
            }
        }
    }
}
