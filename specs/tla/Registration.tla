--------------------------- MODULE Registration ---------------------------
(***************************************************************************)
(* TLA+ specification of the single-word registration protocol used for   *)
(* deterministic team-building (Wimmer & Traeff, SPAA 2011, Section 3;    *)
(* DESIGN.md Section 9; crates/registration/src/lib.rs).                   *)
(*                                                                         *)
(* The whole coordination state is one 64-bit word with four u16 fields   *)
(*   r = required   threads the current task needs                         *)
(*   a = acquired   threads registered so far (incl. the coordinator)     *)
(*   t = teamed     size of the formed team (1 = no team)                  *)
(*   n = counter    renewal counter: registrations taken under an older   *)
(*                  value are void and must not decrement `a` again        *)
(* mutated only by CAS, so every transition below is one atomic step.      *)
(*                                                                         *)
(* Critical invariants verified:                                           *)
(*   R1: WellFormed      - 1 <= t <= a <= r at every reachable state       *)
(*   R2: NoTornTeam      - a formed team (t > 1) satisfies t = a = r:      *)
(*                         membership and size change in the same step     *)
(*   R3: ExactlyOnceSlot - live registrations never exceed a - 1: no       *)
(*                         thief double-registers, no slot is lost         *)
(*   R4: NoDoubleRelease - a release under a stale counter is revoked      *)
(*                         and never decrements `a` (a >= t always)        *)
(*   R5: Progress        - once a >= r, a team can always be formed        *)
(*   R6: NoTornReuse     - a warm-reuse claim (DESIGN.md Section 15) is    *)
(*                         never invalidated behind the coordinator's      *)
(*                         back: while a claim is outstanding the word is  *)
(*                         either still exactly the claimed team or was    *)
(*                         renewed by an explicit counter bump.  Thief     *)
(*                         transitions are write-quiescent on a formed     *)
(*                         idle team (a = r blocks Acquire, a = t blocks   *)
(*                         ReleaseValid), which is what makes the          *)
(*                         one-load try_reuse claim safe.                  *)
(*                                                                         *)
(* Model-checked counterparts: crates/model/tests/registration_model.rs    *)
(*   R1,R2 <-> acquire_race_admits_exactly_one_thief,                      *)
(*             form_vs_release_is_atomic                                   *)
(*   R3    <-> acquire_race_explored_under_plain_sc                        *)
(*   R4    <-> release_vs_renewal_never_double_decrements                  *)
(* and crates/model/tests/moldable_model.rs                                *)
(*   R6    <-> reuse_claim_vs_disband_is_atomic,                           *)
(*             warm_publication_reaches_the_pooled_member                  *)
(***************************************************************************)

EXTENDS Integers, FiniteSets, TLC

CONSTANTS
    Thieves,          \* Set of thief thread ids (the coordinator is implicit)
    MaxRequired,      \* Largest requirement the coordinator may publish
    MaxCounter        \* Renewal-counter bound for model checking

ASSUME Cardinality(Thieves) > 0
ASSUME MaxRequired >= 2
ASSUME MaxCounter >= 1

VARIABLES
    word,             \* [r, a, t, n] - the packed registration word
    thiefState,       \* Function: Thief -> {"idle", "registered", "done"}
    thiefCounter,     \* Function: Thief -> counter value seen at registration
    reuseClaim        \* Snapshot held by an outstanding warm-reuse claim,
                      \* or the string "none" (DESIGN.md Section 15)

vars == <<word, thiefState, thiefCounter, reuseClaim>>

-----------------------------------------------------------------------------
(* Type definitions *)

Word == [r: 1..MaxRequired, a: 1..MaxRequired,
         t: 1..MaxRequired, n: 0..MaxCounter]

TypeOK ==
    /\ word \in Word
    /\ thiefState \in [Thieves -> {"idle", "registered", "done"}]
    /\ thiefCounter \in [Thieves -> 0..MaxCounter]
    /\ reuseClaim \in Word \cup {"none"}

(* Thieves whose registration is still live under the current counter. *)
LiveRegistered ==
    {th \in Thieves : thiefState[th] = "registered" /\ thiefCounter[th] = word.n}

(* The try_reuse predicate: a fully formed, un-renewed, idle team.  Any   *)
(* new requirement at or below t rides it as-is (surplus members get      *)
(* is_surplus local ids, Refinement 2), so the claim does not depend on   *)
(* the next task's exact requirement.                                      *)
WarmTeam == word.t > 1 /\ word.a = word.t /\ word.r = word.t

-----------------------------------------------------------------------------
(* Initial state: the coordinator's singleton "team" of itself. *)

Init ==
    /\ word = [r |-> 1, a |-> 1, t |-> 1, n |-> 0]
    /\ thiefState = [th \in Thieves |-> "idle"]
    /\ thiefCounter = [th \in Thieves |-> 0]
    /\ reuseClaim = "none"

-----------------------------------------------------------------------------
(* Thief transitions (crates/registration try_acquire / try_release).     *)
(* Each models exactly one successful CAS; a failed CAS is a stutter.     *)

(* try_acquire: join the forming team while a slot is open.  The CAS      *)
(* publishes a+1 and the thief remembers the counter it registered under. *)
Acquire(th) ==
    /\ thiefState[th] = "idle"
    /\ word.a < word.r                      \* NotNeeded otherwise
    /\ word' = [word EXCEPT !.a = @ + 1]
    /\ thiefState' = [thiefState EXCEPT ![th] = "registered"]
    /\ thiefCounter' = [thiefCounter EXCEPT ![th] = word.n]
    /\ UNCHANGED reuseClaim

(* try_release with a still-valid counter and no team closed over us:     *)
(* decrement a.  Guard a > t mirrors the Teamed check in the code.        *)
ReleaseValid(th) ==
    /\ thiefState[th] = "registered"
    /\ thiefCounter[th] = word.n
    /\ word.a > word.t
    /\ word' = [word EXCEPT !.a = @ - 1]
    /\ thiefState' = [thiefState EXCEPT ![th] = "idle"]
    /\ UNCHANGED <<thiefCounter, reuseClaim>>

(* try_release under a stale counter: Revoked - the word is untouched.    *)
ReleaseRevoked(th) ==
    /\ thiefState[th] = "registered"
    /\ thiefCounter[th] # word.n
    /\ thiefState' = [thiefState EXCEPT ![th] = "idle"]
    /\ UNCHANGED <<word, thiefCounter, reuseClaim>>

(* try_release while the team closed over this thief: Teamed - the thief  *)
(* stays and will run the team task.                                      *)
ReleaseTeamed(th) ==
    /\ thiefState[th] = "registered"
    /\ thiefCounter[th] = word.n
    /\ word.a <= word.t
    /\ thiefState' = [thiefState EXCEPT ![th] = "done"]
    /\ UNCHANGED <<word, thiefCounter, reuseClaim>>

-----------------------------------------------------------------------------
(* Coordinator transitions (push_requirement / try_form_team / disband /  *)
(* try_reuse).                                                             *)

(* Publish a larger requirement: registered threads remain useful.        *)
PushGrow(newR) ==
    /\ newR \in 2..MaxRequired
    /\ newR > word.r
    /\ word.t = 1                           \* no team is active
    /\ word' = [word EXCEPT !.r = newR]
    /\ UNCHANGED <<thiefState, thiefCounter, reuseClaim>>

(* Publish a smaller requirement: acquired resets to the teamed size and  *)
(* the counter bump voids every outstanding registration (R4).            *)
PushShrink(newR) ==
    /\ newR \in 1..MaxRequired
    /\ newR < word.r
    /\ newR >= word.t
    /\ word.n < MaxCounter                  \* finite model bound
    /\ word' = [word EXCEPT !.r = newR, !.a = word.t, !.n = @ + 1]
    /\ UNCHANGED <<thiefState, thiefCounter, reuseClaim>>

(* try_form_team: only when complete (a >= r); one CAS sets t = a = r,    *)
(* so membership and team size can never tear apart (R2).                 *)
FormTeam ==
    /\ word.a >= word.r
    /\ word.r > 1
    /\ word.t = 1
    /\ word' = [word EXCEPT !.t = word.r, !.a = word.r]
    /\ UNCHANGED <<thiefState, thiefCounter, reuseClaim>>

(* disband: back to the singleton state with a bumped counter; teamed     *)
(* thieves observe the bump and leave on their own.  Covers both the      *)
(* keep-alive expiry and the elastic-shrink barrier disband of Section 15 *)
(* - each is this same renewal step, differing only in trigger.           *)
Disband ==
    /\ word.t > 1
    /\ word.n < MaxCounter
    /\ word' = [word EXCEPT !.r = 1, !.a = 1, !.t = 1, !.n = @ + 1]
    /\ UNCHANGED <<thiefState, thiefCounter, reuseClaim>>

(* try_reuse (Section 15): a pure one-load claim of the warm team for the *)
(* next task.  The word is untouched - the whole point of the fast path   *)
(* is that the claim is an Acquire load, not a CAS.                       *)
ReuseClaim ==
    /\ WarmTeam
    /\ reuseClaim = "none"
    /\ reuseClaim' = word
    /\ UNCHANGED <<word, thiefState, thiefCounter>>

(* The claimed publication completes (the seqlock write lands and the     *)
(* team runs the task): the claim is consumed and a new cycle begins.     *)
ReusePublish ==
    /\ reuseClaim # "none"
    /\ reuseClaim' = "none"
    /\ UNCHANGED <<word, thiefState, thiefCounter>>

-----------------------------------------------------------------------------

Next ==
    \/ \E th \in Thieves :
        Acquire(th) \/ ReleaseValid(th) \/ ReleaseRevoked(th) \/ ReleaseTeamed(th)
    \/ \E newR \in 1..MaxRequired : PushGrow(newR) \/ PushShrink(newR)
    \/ FormTeam
    \/ Disband
    \/ ReuseClaim
    \/ ReusePublish

Spec == Init /\ [][Next]_vars /\ WF_vars(FormTeam)

-----------------------------------------------------------------------------
(* Invariants *)

(* R1: the word is well-formed in every reachable state. *)
WellFormed ==
    /\ word.t >= 1
    /\ word.t <= word.a
    /\ word.a <= word.r

(* R2: no torn team - a formed team is exactly the closed registration.  *)
NoTornTeam == (word.t > 1) => (word.t = word.r /\ word.a = word.r)

(* R3: exactly-once registration - live thief registrations never exceed  *)
(* the acquired count minus the coordinator's own slot.                   *)
ExactlyOnceSlot == Cardinality(LiveRegistered) <= word.a - 1

(* R4: a stale release cannot push `a` below the teamed size.             *)
NoDoubleRelease == word.a >= word.t

(* R6: no torn reuse - while a warm-reuse claim is outstanding, the word  *)
(* is either still exactly the claimed team or was renewed by a counter   *)
(* bump the claimed members will observe.  A third state - the word       *)
(* drifting away from the claim without a renewal - would mean a thief    *)
(* perturbed a formed idle team, which the guards make impossible.        *)
NoTornReuse ==
    \/ reuseClaim = "none"
    \/ word = reuseClaim
    \/ word.n > reuseClaim.n

Invariants == TypeOK /\ WellFormed /\ NoTornTeam /\ ExactlyOnceSlot
              /\ NoDoubleRelease /\ NoTornReuse

(* R5: progress - whenever the word is complete for a multi-thread        *)
(* requirement, a team is eventually formed (fairness on FormTeam).       *)
Progress == [](((word.a >= word.r) /\ (word.r > 1) /\ (word.t = 1)) ~> (word.t > 1))

=============================================================================
\* Model-check with e.g.:
\*   Thieves    <- {t1, t2}
\*   MaxRequired<- 3
\*   MaxCounter <- 2
\* INVARIANTS Invariants
\* PROPERTIES Progress
