------------------------------ MODULE Parking ------------------------------
(***************************************************************************)
(* TLA+ specification of the eventcount parking protocol behind the       *)
(* scheduler's event-driven sleep (DESIGN.md Sections 10 and 12;          *)
(* crates/util/src/eventcount.rs).                                         *)
(*                                                                         *)
(* Producers publish work and then notify; waiters run the three-step     *)
(* wait protocol  prepare (read ticket) -> recheck -> park.  A notifier   *)
(* always bumps the global ticket first and then tries to claim a parked  *)
(* slot, so a waiter committing to sleep either sees the published work   *)
(* on its recheck, aborts on the moved ticket, or is claimed in its slot. *)
(*                                                                         *)
(* Critical invariants verified:                                           *)
(*   P1: NoLostWakeup   - a waiter is never durably parked while          *)
(*                        unconsumed work and a spent notification exist   *)
(*   P2: ExactlyOnceClaim - each notification claims at most one waiter   *)
(*   P3: TicketMonotone - the ticket never moves backwards                 *)
(*   P4: Progress       - published work is eventually consumed, even     *)
(*                        when the notify is dropped (Section 12          *)
(*                        backstop), as long as backstop wakes are fair    *)
(*                                                                         *)
(* Model-checked counterparts: crates/model/tests/eventcount_model.rs      *)
(*   P1,P2 <-> publish_then_notify_is_never_lost,                          *)
(*             push_observed_empty_wakes_the_parked_popper                 *)
(*   P4    <-> dropped_notify_is_rescued_by_the_backstop                   *)
(***************************************************************************)

EXTENDS Integers, FiniteSets, TLC

CONSTANTS
    Waiters,          \* Set of waiter thread ids (one eventcount slot each)
    MaxWork,          \* Work items the producer may publish (model bound)
    DropBudget        \* Notifications the fault injector may swallow

ASSUME Cardinality(Waiters) > 0
ASSUME MaxWork >= 1
ASSUME DropBudget >= 0

VARIABLES
    ticket,           \* Global notification ticket (monotone counter)
    slot,             \* Function: Waiter -> {"empty","parked","notified"}
    waiterPc,         \* Function: Waiter -> {"active","prepared","asleep","backstop"}
    seenTicket,       \* Function: Waiter -> ticket read at prepare_wait
    work,             \* Unconsumed published work items
    published,        \* Total work items ever published
    dropsLeft         \* Remaining fault-injection budget (Section 12 test)

vars == <<ticket, slot, waiterPc, seenTicket, work, published, dropsLeft>>

-----------------------------------------------------------------------------
(* Type definitions *)

TypeOK ==
    /\ ticket \in Nat
    /\ slot \in [Waiters -> {"empty", "parked", "notified"}]
    /\ waiterPc \in [Waiters -> {"active", "prepared", "asleep", "backstop"}]
    /\ seenTicket \in [Waiters -> Nat]
    /\ work \in 0..MaxWork
    /\ published \in 0..MaxWork
    /\ dropsLeft \in 0..DropBudget

ParkedWaiters == {w \in Waiters : waiterPc[w] = "asleep"}

-----------------------------------------------------------------------------

Init ==
    /\ ticket = 0
    /\ slot = [w \in Waiters |-> "empty"]
    /\ waiterPc = [w \in Waiters |-> "active"]
    /\ seenTicket = [w \in Waiters |-> 0]
    /\ work = 0
    /\ published = 0
    /\ dropsLeft = DropBudget

-----------------------------------------------------------------------------
(* Producer transitions. *)

(* Publish one work item (the injector push that observed empty). *)
Publish ==
    /\ published < MaxWork
    /\ work' = work + 1
    /\ published' = published + 1
    /\ UNCHANGED <<ticket, slot, waiterPc, seenTicket, dropsLeft>>

(* notify_one_idle, step 1: bump the ticket.  The bump is ordered before  *)
(* the claim scan, which is what closes the prepare->recheck->park race.  *)
(* Claiming a parked slot is a separate atomic step (NotifyClaim) - the   *)
(* protocol does not require bump+claim to be one action.                 *)
NotifyBump ==
    /\ work > 0                             \* notifies follow a publish
    /\ ticket' = ticket + 1
    /\ UNCHANGED <<slot, waiterPc, seenTicket, work, published, dropsLeft>>

(* notify_one_idle, step 2: CAS one parked slot to notified.              *)
NotifyClaim(w) ==
    /\ slot[w] = "parked"
    /\ ticket > seenTicket[w]               \* a bump preceded the scan
    /\ slot' = [slot EXCEPT ![w] = "notified"]
    /\ UNCHANGED <<ticket, waiterPc, seenTicket, work, published, dropsLeft>>

(* Section 12 fault injection: the whole notification (bump AND claim)    *)
(* is swallowed.  Only the backstop can save a committed sleeper now.     *)
NotifyDropped ==
    /\ work > 0
    /\ dropsLeft > 0
    /\ dropsLeft' = dropsLeft - 1
    /\ UNCHANGED <<ticket, slot, waiterPc, seenTicket, work, published>>

-----------------------------------------------------------------------------
(* Waiter transitions (prepare -> recheck -> park). *)

(* prepare_wait: fence and read the ticket. *)
Prepare(w) ==
    /\ waiterPc[w] = "active"
    /\ seenTicket' = [seenTicket EXCEPT ![w] = ticket]
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "prepared"]
    /\ UNCHANGED <<ticket, slot, work, published, dropsLeft>>

(* Recheck hit: the condition is true, consume and do not park. *)
RecheckConsume(w) ==
    /\ waiterPc[w] \in {"active", "prepared"}
    /\ work > 0
    /\ work' = work - 1
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "active"]
    /\ UNCHANGED <<ticket, slot, seenTicket, published, dropsLeft>>

(* Park commit: publish the parked slot.  The subsequent ticket re-read   *)
(* is modeled by ParkAbort - a waiter whose ticket already moved wakes    *)
(* immediately and never sleeps through the notification.                 *)
ParkCommit(w) ==
    /\ waiterPc[w] = "prepared"
    /\ work = 0 \/ ticket = seenTicket[w]   \* recheck missed
    /\ slot' = [slot EXCEPT ![w] = "parked"]
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "asleep"]
    /\ UNCHANGED <<ticket, seenTicket, work, published, dropsLeft>>

(* Ticket moved between prepare and the in-park re-read: abort the sleep. *)
ParkAbort(w) ==
    /\ waiterPc[w] = "asleep"
    /\ slot[w] = "parked"
    /\ ticket # seenTicket[w]
    /\ slot' = [slot EXCEPT ![w] = "empty"]
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "active"]
    /\ UNCHANGED <<ticket, seenTicket, work, published, dropsLeft>>

(* A claimed waiter wakes and reclaims its slot. *)
WakeNotified(w) ==
    /\ waiterPc[w] = "asleep"
    /\ slot[w] = "notified"
    /\ slot' = [slot EXCEPT ![w] = "empty"]
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "active"]
    /\ UNCHANGED <<ticket, seenTicket, work, published, dropsLeft>>

(* Section 12 defensive backstop: the timeout fires on a still-parked     *)
(* waiter.  In a healthy run this is unreachable for lack of need; with   *)
(* NotifyDropped it is the only wake left.                                *)
BackstopWake(w) ==
    /\ waiterPc[w] = "asleep"
    /\ slot[w] = "parked"
    /\ slot' = [slot EXCEPT ![w] = "empty"]
    /\ waiterPc' = [waiterPc EXCEPT ![w] = "active"]
    /\ UNCHANGED <<ticket, seenTicket, work, published, dropsLeft>>

-----------------------------------------------------------------------------

Next ==
    \/ Publish \/ NotifyBump \/ NotifyDropped
    \/ \E w \in Waiters :
        \/ NotifyClaim(w) \/ Prepare(w) \/ RecheckConsume(w)
        \/ ParkCommit(w) \/ ParkAbort(w) \/ WakeNotified(w) \/ BackstopWake(w)

(* Fairness: claimed and aborted waiters eventually wake; the backstop    *)
(* timer eventually fires on a parked waiter; consumers eventually        *)
(* consume.  Nothing forces the producer to notify - P1 must hold anyway. *)
Spec ==
    /\ Init /\ [][Next]_vars
    /\ \A w \in Waiters :
        WF_vars(WakeNotified(w)) /\ WF_vars(ParkAbort(w)) /\
        WF_vars(BackstopWake(w)) /\ WF_vars(RecheckConsume(w))

-----------------------------------------------------------------------------
(* Invariants *)

(* P1: no lost wakeup - if work is unconsumed and some notification bump  *)
(* happened after a waiter prepared, that waiter is not silently asleep:  *)
(* either its slot was claimed, or the moved ticket lets it abort (the    *)
(* ParkAbort action is enabled).  A state where a waiter sleeps with      *)
(* slot = "parked", an unchanged ticket view, and a spent notification    *)
(* would be a lost wakeup - it is unreachable.                            *)
NoLostWakeup ==
    \A w \in Waiters :
        (waiterPc[w] = "asleep" /\ slot[w] = "parked" /\ ticket # seenTicket[w])
            => ENABLED ParkAbort(w)

(* P2: a notification claims at most one waiter per bump: claimed slots   *)
(* never outnumber ticket bumps.                                          *)
ExactlyOnceClaim == Cardinality({w \in Waiters : slot[w] = "notified"}) <= ticket

(* P3: the ticket is monotone (no waiter ever holds a view from the       *)
(* future).                                                               *)
TicketMonotone == \A w \in Waiters : seenTicket[w] <= ticket

Invariants == TypeOK /\ NoLostWakeup /\ ExactlyOnceClaim /\ TicketMonotone

(* P4: progress - published work is eventually consumed even when every   *)
(* notification is dropped: the backstop (weak-fair) unparks sleepers.    *)
Progress == [](work > 0 ~> work = 0)

=============================================================================
\* Model-check with e.g.:
\*   Waiters    <- {w1, w2}
\*   MaxWork    <- 2
\*   DropBudget <- 1
\* INVARIANTS Invariants
\* PROPERTIES Progress
