//! Offline stub of `crossbeam-utils` providing only [`CachePadded`].
//!
//! The real crate picks the alignment per target architecture; this stub
//! always uses 128 bytes, which covers the two-line prefetcher on x86_64 and
//! is a safe over-alignment everywhere else.

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, so that two
/// `CachePadded` values never share a cache line (avoiding false sharing).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }
}
