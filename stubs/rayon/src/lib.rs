//! Offline stub of `rayon` providing the surface `teamsteal-bench` uses for
//! its Cilk++-substitute baselines: [`join`], [`ThreadPool`] /
//! [`ThreadPoolBuilder`], and [`slice::ParallelSliceMut::par_sort_unstable`].
//!
//! Semantics are preserved (both closures of `join` run to completion,
//! panics propagate, sorts sort); performance characteristics are NOT those
//! of real rayon: `join` forks a real OS thread only while fewer than
//! `2 × available_parallelism` stub threads are live (no work-stealing pool),
//! and `par_sort_unstable` is a sequential `sort_unstable`. Benchmarks that
//! compare against these baselines therefore understate rayon.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of currently live threads forked by [`join`].
static LIVE_FORKS: AtomicUsize = AtomicUsize::new(0);

fn fork_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        2 * std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Decrements [`LIVE_FORKS`] on drop, so a panic unwinding out of a join
/// closure cannot leak fork permits and serialize the rest of the process.
struct ForkPermit;

impl Drop for ForkPermit {
    fn drop(&mut self) {
        LIVE_FORKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// Unlike real rayon there is no work-stealing: `b` is forked onto a fresh
/// scoped thread while the live-fork budget allows it, otherwise both
/// closures run sequentially on the caller's thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let under_budget = LIVE_FORKS.fetch_add(1, Ordering::Relaxed) < fork_budget();
    let _permit = ForkPermit;
    if under_budget {
        std::thread::scope(|s| {
            let handle = s.spawn(b);
            let ra = a();
            let rb = match handle.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stub never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("stub rayon pools cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a new builder with default configuration.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (recorded but, in the stub, only
    /// reported back via [`ThreadPool::current_num_threads`]).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. The stub cannot fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle that in real rayon owns worker threads; the stub merely records
/// the requested width and executes [`install`](ThreadPool::install) inline.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Executes `op` "inside" the pool (inline, in the stub).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    /// The number of threads this pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod slice {
    //! Stub of `rayon::slice`: parallel sort entry points, run sequentially.

    /// Parallel (here: sequential) sorting extension trait for slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Sorts the slice. The stub delegates to `slice::sort_unstable`.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests_deeply_without_exhausting_threads() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let (start, end) = (range.start, range.end);
            if end - start <= 64 {
                return range.sum();
            }
            let mid = start + (end - start) / 2;
            let (lo, hi) = join(|| sum(start..mid), || sum(mid..end));
            lo + hi
        }
        assert_eq!(sum(0..100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn pool_builds_and_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        use slice::ParallelSliceMut;
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
    }
}
