//! Offline stub of `criterion` implementing the subset of the API the
//! workspace benches use: [`Criterion::benchmark_group`], group tuning
//! methods, [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it warms each benchmark up
//! for the configured warm-up time, then measures `sample_size` samples (or
//! as many as fit in the measurement time, whichever bound is hit last for at
//! least one sample) and prints min / median / max per-iteration wall time.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement backends. Only wall-clock time exists in the stub.

    /// Wall-clock time measurement (the stub's only backend).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Returns the argument, hindering the optimizer from const-folding it away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, like real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { full: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// The benchmark driver handed to the functions of a [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        group_name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name and timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark is warmed up before measurement.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Annotates the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.full, self.throughput);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group. The stub has no cross-benchmark reporting, so
    /// this only prints a terminating line.
    pub fn finish(self) {
        println!("{}: group finished", self.name);
    }
}

/// Times a closure passed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly: first for the warm-up period, then once
    /// per sample until either the configured sample count is collected or
    /// the measurement-time budget runs out (at least one sample is always
    /// taken).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        self.samples.clear();
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.3} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: min {min:?}, median {median:?}, max {max:?} over {} samples{rate}",
            sorted.len()
        );
    }
}

/// Bundles benchmark functions into a single callable group, mirroring
/// criterion's macro of the same name (configuration arms are not supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to a `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 3);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
