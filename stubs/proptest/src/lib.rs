//! Offline stub of `proptest` implementing the subset of the API this
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute and any number of `#[test]` functions),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] implemented for integer ranges,
//! * [`arbitrary::any`] for the primitive integer types and `bool`,
//! * [`collection::vec`],
//! * [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: inputs are sampled from a deterministic
//! per-case SplitMix64 stream (every run tests the same inputs), there is no
//! shrinking (a failure reports the case index and the assertion message),
//! and the default number of cases is 64 rather than 256 to keep
//! `cargo test` latency low.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test runner configuration and error types.

    use std::fmt;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of test cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case random number generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a property. Each case gets
        /// an independent, reproducible stream.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: (case.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Lemire-style widening multiply; the slight bias is irrelevant
            // for test-input generation.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] abstraction: a recipe for generating test values.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there are no value trees or shrinking; a strategy
    /// is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64/usize domain.
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    /// A strategy producing a single fixed value (clone per case).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! Default strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over the whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open range of collection sizes. Mirrors real proptest's
    /// `SizeRange` so bare `0..100` length literals infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { start: range.start, end: range.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange { start: *range.start(), end: range.end().checked_add(1).expect("size range overflow") }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { start: exact, end: exact + 1 }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The glob-import surface used by test modules.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the real crate's block form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn prop(x in 0u32..10, mut v in proptest::collection::vec(any::<u32>(), 0..100)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!("property failed at case {case}: {error}");
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strategy = crate::collection::vec(any::<u32>(), 5usize..10);
        let a = strategy.sample(&mut TestRng::for_case(3));
        let b = strategy.sample(&mut TestRng::for_case(3));
        assert_eq!(a, b);
        assert!(a.len() >= 5 && a.len() < 10);
    }

    #[test]
    fn ranges_respect_bounds() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::for_case(0);
        for _ in 0..10_000 {
            let x = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let y = (0usize..=(1 << 40)).sample(&mut rng);
            assert!(y <= 1 << 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_supports_config_and_multiple_args(
            x in 1u8..5,
            mut v in crate::collection::vec(any::<u16>(), 0..8),
        ) {
            v.push(x as u16);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(x as u16));
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_supports_default_config(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }
}
