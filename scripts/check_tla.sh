#!/usr/bin/env bash
# Grep-level sanity checks for the TLA+ specs in specs/tla/.
#
# This is NOT a model checker: CI has no TLC/Java toolchain, so this script
# only guards the specs against the failure modes a text edit can introduce —
# a renamed module that no longer matches its file, a deleted invariant that
# DESIGN.md still cites, unbalanced comment blocks, a missing terminator.
# Run TLC locally (see the footer of each spec for a model config) when
# changing the protocols themselves.
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

err() {
    echo "check_tla: $1" >&2
    fail=1
}

check_defined() {
    local file="$1" op="$2"
    grep -Eq "^${op}[[:space:]]*==" "$file" || err "$file: operator '$op' is not defined"
}

specs=(specs/tla/*.tla)
[ -e "${specs[0]}" ] || { err "no specs found under specs/tla/"; exit 1; }

for file in "${specs[@]}"; do
    name="$(basename "$file" .tla)"

    grep -Eq "^-+ MODULE ${name} -+$" "$file" \
        || err "$file: MODULE header missing or does not match filename"
    grep -Eq "^=====*$" "$file" || err "$file: module terminator (====) missing"
    grep -q "^EXTENDS" "$file" || err "$file: EXTENDS clause missing"

    for op in Init Next Spec TypeOK Invariants Progress; do
        check_defined "$file" "$op"
    done

    opens=$(grep -o "(\*" "$file" | wc -l)
    closes=$(grep -o "\*)" "$file" | wc -l)
    [ "$opens" -eq "$closes" ] \
        || err "$file: unbalanced comment blocks ($opens '(*' vs $closes '*)')"
done

# The invariants DESIGN.md Section 14 cites by name must keep existing.
for op in WellFormed NoTornTeam ExactlyOnceSlot NoDoubleRelease NoTornReuse; do
    check_defined specs/tla/Registration.tla "$op"
done
for op in NoLostWakeup ExactlyOnceClaim TicketMonotone; do
    check_defined specs/tla/Parking.tla "$op"
done

if [ "$fail" -ne 0 ]; then
    echo "check_tla: FAILED" >&2
    exit 1
fi
echo "check_tla: ${#specs[@]} spec(s) OK"
