//! Data-parallel reductions with explicit thread requirements.
//!
//! This example shows the SPMD style the team API enables: a task that
//! *requires* `r` threads gets `r` consecutively numbered members, each of
//! which processes a slice of the data, synchronizes on the team barrier and
//! lets one member combine the partial results.  Three reductions of
//! different sizes run concurrently with a batch of ordinary sequential
//! tasks, demonstrating that teams of different sizes and classic
//! work-stealing tasks coexist on one scheduler.
//!
//! ```text
//! cargo run --release --example team_reduce
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, TaskContext};

/// A shared reduction workspace for one team task.
struct Reduction {
    /// The input values.
    input: Vec<u64>,
    /// One partial-sum slot per team member.
    partials: Vec<AtomicU64>,
    /// The final result, written by the member that wins the barrier.
    result: AtomicU64,
}

impl Reduction {
    fn new(n: usize, team: usize, seed: u64) -> Arc<Self> {
        Arc::new(Reduction {
            input: (0..n as u64).map(|i| (i.wrapping_mul(seed) % 1000) + 1).collect(),
            partials: (0..team).map(|_| AtomicU64::new(0)).collect(),
            result: AtomicU64::new(0),
        })
    }

    /// The team-task body: every member sums its stripe, then one member
    /// folds the stripes.
    fn run(&self, ctx: &TaskContext<'_>) {
        // Distribute over the *requested* number of threads; surplus members
        // (possible when the requirement is rounded up to a hierarchy group
        // on non power-of-two machines) only take part in the barriers.
        let workers = ctx.requested_threads().min(ctx.team_size()).min(self.partials.len());
        let me = ctx.local_id();
        if me < workers {
            let chunk = self.input.len().div_ceil(workers);
            let lo = (me * chunk).min(self.input.len());
            let hi = ((me + 1) * chunk).min(self.input.len());
            let partial: u64 = self.input[lo..hi].iter().sum();
            self.partials[me].store(partial, Ordering::Relaxed);
        }
        if ctx.barrier() {
            let total: u64 = self.partials.iter().map(|p| p.load(Ordering::Relaxed)).sum();
            self.result.store(total, Ordering::Relaxed);
        }
        // Second barrier so every member sees the published result before the
        // team moves on to its next task.
        ctx.barrier();
        assert_eq!(
            self.result.load(Ordering::Relaxed),
            self.input.iter().sum::<u64>()
        );
    }
}

fn main() {
    let threads = 8;
    let scheduler = Scheduler::with_threads(threads);
    println!("running three team reductions (r = 2, 4, 8) plus 64 sequential tasks on {threads} workers");

    let small = Reduction::new(200_000, 2, 3);
    let medium = Reduction::new(400_000, 4, 5);
    let large = Reduction::new(800_000, 8, 7);
    let sequential_done = Arc::new(AtomicU64::new(0));

    scheduler.scope(|scope| {
        // Ordinary sequential background tasks.
        for i in 0..64u64 {
            let sequential_done = Arc::clone(&sequential_done);
            scope.spawn(move |_| {
                // A little busy work.
                let mut acc = i;
                for k in 0..10_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                sequential_done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Three data-parallel reductions with different thread requirements.
        for (label, team, reduction) in [
            ("small", 2usize, Arc::clone(&small)),
            ("medium", 4, Arc::clone(&medium)),
            ("large", 8, Arc::clone(&large)),
        ] {
            let r = Arc::clone(&reduction);
            scope.spawn_team(team, move |ctx| r.run(ctx));
            println!("  submitted {label} reduction requiring {team} threads");
        }
    });

    println!(
        "results: small = {}, medium = {}, large = {}",
        small.result.load(Ordering::Relaxed),
        medium.result.load(Ordering::Relaxed),
        large.result.load(Ordering::Relaxed)
    );
    println!(
        "sequential tasks completed: {}",
        sequential_done.load(Ordering::Relaxed)
    );
    let m = scheduler.metrics();
    println!(
        "scheduler metrics: {} teams formed, {} registrations (one CAS each), {} steals",
        m.teams_formed, m.registrations, m.steals
    );
}
