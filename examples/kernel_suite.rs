//! Tour of the mixed-mode application kernels sharing one scheduler.
//!
//! One of the arguments the paper makes for putting data-parallel tasks *on
//! the work-stealer* (instead of hand-rolled helper threads) is composability:
//! different parallel computations can share the same worker pool and
//! load-balance against each other.  This example runs the whole kernel suite
//! — reduction, prefix sum, histogram, merge sort, matrix multiplication —
//! back to back on a single scheduler and reports what the scheduler did.
//!
//! ```text
//! cargo run --release --example kernel_suite [n] [threads]
//! ```

use teamsteal::apps::histogram::{histogram_mixed, histogram_sequential};
use teamsteal::apps::matmul::{matmul_mixed, matmul_sequential, Matrix};
use teamsteal::apps::merge::merge_sort_mixed;
use teamsteal::apps::reduce::{dot_product, parallel_max, parallel_sum};
use teamsteal::apps::scan::inclusive_scan_mixed;
use teamsteal::{Distribution, Scheduler};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 20);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    println!("kernel_suite: n = {n}, {threads} worker threads");
    let scheduler = Scheduler::with_threads(threads);

    // Reduction.
    let ints: Vec<u64> = (0..n as u64).map(|i| i % 1_000).collect();
    let sum = parallel_sum(&scheduler, &ints);
    let max = parallel_max(&scheduler, &ints).unwrap();
    assert_eq!(sum, ints.iter().sum::<u64>());
    println!("  reduce:    sum = {sum}, max = {max}");

    // Dot product.
    let a: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let dot = dot_product(&scheduler, &a, &b);
    println!("  dot:       a·b = {dot:.1}");

    // Prefix sum.
    let mut prefix = vec![0u64; n];
    inclusive_scan_mixed(&scheduler, &ints, &mut prefix, 0, |x, y| x + y);
    assert_eq!(*prefix.last().unwrap(), sum);
    println!("  scan:      last prefix = {}", prefix.last().unwrap());

    // Histogram.
    let keys = Distribution::Gauss.generate(n, threads, 7);
    let hist = histogram_mixed(&scheduler, &keys, 32);
    assert_eq!(hist, histogram_sequential(&keys, 32));
    let densest = hist
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, c)| (i, *c))
        .unwrap();
    println!("  histogram: densest bucket {} holds {} keys", densest.0, densest.1);

    // Mixed-mode merge sort.
    let mut to_sort = Distribution::Staggered.generate(n, threads, 11);
    merge_sort_mixed(&scheduler, &mut to_sort);
    assert!(teamsteal::is_sorted(&to_sort));
    println!("  msort:     sorted {} staggered keys", to_sort.len());

    // Matrix multiplication (kept small so the example stays quick).
    let dim = 160;
    let ma = Matrix::from_fn(dim, dim, |i, j| ((i + 2 * j) % 9) as f64 * 0.5);
    let mb = Matrix::from_fn(dim, dim, |i, j| ((3 * i + j) % 7) as f64 * 0.25);
    let mc = matmul_mixed(&scheduler, &ma, &mb);
    let diff = mc.max_abs_diff(&matmul_sequential(&ma, &mb));
    println!("  matmul:    {dim}x{dim}, max |diff| vs sequential = {diff:.1e}");

    let m = scheduler.metrics();
    println!();
    println!(
        "scheduler totals: {} sequential task executions, {} team tasks, {} teams formed, {} steals",
        m.tasks_executed, m.team_tasks_executed, m.teams_formed, m.steals
    );
}
