//! A heterogeneous mixed-mode workload: a stream of tasks whose thread
//! requirements vary between 1 and the full machine, interleaved at random.
//!
//! This is the situation the paper's introduction motivates (PEPPHER
//! component tasks with fixed resource requirements): the scheduler must keep
//! building, reusing, shrinking and disbanding teams while ordinary
//! work-stealing fills the gaps.  The example prints how the work was spread
//! over the workers and how many teams were built.
//!
//! ```text
//! cargo run --release --example heterogeneous_mix [tasks]
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, StealPolicy};
use teamsteal_util::rng::Xoshiro256;

fn main() {
    let total_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let threads = 8usize;
    let scheduler = Scheduler::builder()
        .threads(threads)
        .steal_policy(StealPolicy::Deterministic)
        .build();

    // Per-worker execution counts, to see the load balance.
    let per_worker: Arc<Vec<AtomicUsize>> =
        Arc::new((0..threads).map(|_| AtomicUsize::new(0)).collect());
    let team_work = Arc::new(AtomicU64::new(0));
    let solo_work = Arc::new(AtomicU64::new(0));

    let mut rng = Xoshiro256::new(2024);
    let mut submitted_by_requirement = vec![0usize; threads + 1];

    scheduler.scope(|scope| {
        for i in 0..total_tasks {
            // Requirements 1, 2, 4 and 8 with decreasing probability.
            let requirement = match rng.next_below(10) {
                0..=5 => 1usize,
                6..=7 => 2,
                8 => 4,
                _ => 8,
            };
            submitted_by_requirement[requirement] += 1;
            let per_worker = Arc::clone(&per_worker);
            if requirement == 1 {
                let solo_work = Arc::clone(&solo_work);
                scope.spawn(move |ctx| {
                    per_worker[ctx.global_thread_id()].fetch_add(1, Ordering::Relaxed);
                    solo_work.fetch_add(busy_work(i as u64, 20_000), Ordering::Relaxed);
                });
            } else {
                let team_work = Arc::clone(&team_work);
                scope.spawn_team(requirement, move |ctx| {
                    per_worker[ctx.global_thread_id()].fetch_add(1, Ordering::Relaxed);
                    // Split the work across the members; the barrier makes the
                    // task genuinely cooperative.
                    let share = busy_work(i as u64 + ctx.local_id() as u64, 20_000 / ctx.team_size() as u64);
                    team_work.fetch_add(share, Ordering::Relaxed);
                    ctx.barrier();
                });
            }
        }
    });

    println!("submitted {total_tasks} tasks with requirements:");
    for (r, count) in submitted_by_requirement.iter().enumerate() {
        if *count > 0 {
            println!("  r = {r}: {count} tasks");
        }
    }
    println!("task executions per worker (team participations count once per member):");
    for (w, count) in per_worker.iter().enumerate() {
        println!("  worker {w}: {}", count.load(Ordering::Relaxed));
    }
    let m = scheduler.metrics();
    println!(
        "scheduler metrics: {} sequential executions, {} team participations, {} teams formed, \
         {} registrations, {} steals ({} tasks moved), {} help-steals",
        m.tasks_executed,
        m.team_tasks_executed,
        m.teams_formed,
        m.registrations,
        m.steals,
        m.tasks_stolen,
        m.help_steals
    );
    // Every submitted task ran: sequential ones once, team ones once per member.
    std::hint::black_box((solo_work, team_work));
}

/// Deterministic busy loop standing in for real component work.
fn busy_work(seed: u64, iters: u64) -> u64 {
    let mut acc = seed;
    for k in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    std::hint::black_box(acc % 7)
}
