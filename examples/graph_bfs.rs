//! Breadth-first search over a grid graph with team-parallel frontier
//! expansion.
//!
//! BFS levels start tiny, grow into wide data-parallel frontiers, and shrink
//! again — the mixed-mode shape the scheduler targets: small levels stay on
//! one thread, wide levels become one team task each.
//!
//! ```text
//! cargo run --release --example graph_bfs [width] [height] [threads]
//! ```

use teamsteal::apps::bfs::{bfs_mixed, bfs_sequential, CsrGraph, UNREACHABLE};
use teamsteal::Scheduler;

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let height: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    println!("graph_bfs: {width}x{height} grid graph, {threads} worker threads");
    let graph = CsrGraph::grid(width, height);
    println!(
        "  {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let source = 0u32;
    let t0 = std::time::Instant::now();
    let reference = bfs_sequential(&graph, source);
    let seq_time = t0.elapsed();

    let scheduler = Scheduler::with_threads(threads);
    let t1 = std::time::Instant::now();
    let distances = bfs_mixed(&scheduler, &graph, source);
    let mixed_time = t1.elapsed();

    assert_eq!(distances, reference, "mixed-mode BFS must agree with sequential BFS");

    let reachable = distances.iter().filter(|&&d| d != UNREACHABLE).count();
    let eccentricity = distances
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    println!("  sequential:  {:.3?}", seq_time);
    println!("  mixed-mode:  {:.3?}", mixed_time);
    println!("  reachable vertices: {reachable}");
    println!("  eccentricity of the source: {eccentricity}");

    let metrics = scheduler.metrics();
    println!(
        "  scheduler: {} teams formed for the wide levels, {} sequential tasks",
        metrics.teams_formed, metrics.tasks_executed
    );
}
