//! Quickstart: sequential tasks, a data-parallel team task, and the metrics
//! the scheduler exposes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, StealPolicy};

fn main() {
    // A scheduler with 4 workers and the paper's deterministic team-building
    // steal policy.
    let scheduler = Scheduler::builder()
        .threads(4)
        .steal_policy(StealPolicy::Deterministic)
        .build();
    println!(
        "scheduler with {} workers, hierarchy levels {:?}",
        scheduler.num_threads(),
        scheduler.topology().level_sizes()
    );

    // ---------------------------------------------------------------
    // 1. Classic work-stealing: a bunch of sequential (r = 1) tasks.
    // ---------------------------------------------------------------
    let sum = Arc::new(AtomicU64::new(0));
    scheduler.scope(|scope| {
        for chunk in 0..16u64 {
            let sum = Arc::clone(&sum);
            scope.spawn(move |ctx| {
                // Each task can spawn further tasks onto its worker's queue.
                let lo = chunk * 1_000;
                let hi = lo + 1_000;
                let local: u64 = (lo..hi).sum();
                sum.fetch_add(local, Ordering::Relaxed);
                let _ = ctx.global_thread_id(); // which worker ran us
            });
        }
    });
    let expected: u64 = (0..16_000u64).sum();
    println!("sequential tasks: sum = {} (expected {expected})", sum.load(Ordering::Relaxed));
    assert_eq!(sum.load(Ordering::Relaxed), expected);

    // ---------------------------------------------------------------
    // 2. Mixed-mode parallelism: a task that *requires* 4 threads.
    //    The scheduler builds a team of 4 consecutively numbered workers;
    //    every member runs the closure with its own local id.
    // ---------------------------------------------------------------
    let partial = Arc::new([
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ]);
    let p = Arc::clone(&partial);
    scheduler.run_team(4, move |ctx| {
        let me = ctx.local_id();
        let team = ctx.team_size();
        // Split a reduction across the team by local id (SPMD style).
        let total: u64 = (0..1_000_000u64).filter(|x| x % team as u64 == me as u64).sum();
        p[me].store(total, Ordering::Relaxed);
        // Synchronize, then let exactly one member report.
        if ctx.barrier() {
            let grand: u64 = p.iter().map(|x| x.load(Ordering::Relaxed)).sum();
            println!("team of {team}: grand total = {grand}");
            assert_eq!(grand, (0..1_000_000u64).sum());
        }
    });

    // ---------------------------------------------------------------
    // 3. What did the scheduler do?
    // ---------------------------------------------------------------
    let m = scheduler.metrics();
    println!(
        "metrics: {} sequential tasks, {} team participations, {} teams formed, {} registrations, {} steals",
        m.tasks_executed, m.team_tasks_executed, m.teams_formed, m.registrations, m.steals
    );
}
