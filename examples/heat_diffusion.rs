//! Heat diffusion on a 1-D rod: an iterative stencil run by a single,
//! long-lived team task.
//!
//! Every Jacobi sweep is data parallel, but consecutive sweeps depend on each
//! other.  A fork-join runtime has to spawn and join `p` tasks per sweep; on
//! the team-building scheduler the whole iteration is **one** team task — the
//! team is built once and reused for every sweep (Section 3.1 of the paper),
//! and sweeps are separated by intra-team barriers.
//!
//! ```text
//! cargo run --release --example heat_diffusion [cells] [sweeps] [threads]
//! ```

use teamsteal::apps::stencil::{jacobi_mixed, jacobi_sequential, StencilConfig};
use teamsteal::Scheduler;

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400_000);
    let sweeps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    println!("heat_diffusion: {cells} cells, {sweeps} sweeps, {threads} worker threads");

    // A rod that is hot in the middle and cold (fixed) at both ends.
    let mut grid = vec![0.0f64; cells];
    for (i, cell) in grid.iter_mut().enumerate() {
        let x = i as f64 / cells as f64;
        *cell = 100.0 * (-((x - 0.5) * 12.0).powi(2)).exp();
    }

    let config = StencilConfig {
        sweeps,
        alpha: 0.25,
        min_cells_per_member: 8 * 1024,
    };

    let t0 = std::time::Instant::now();
    let reference = jacobi_sequential(&grid, &config);
    let seq_time = t0.elapsed();

    let scheduler = Scheduler::with_threads(threads);
    let t1 = std::time::Instant::now();
    let result = jacobi_mixed(&scheduler, &grid, &config);
    let mixed_time = t1.elapsed();

    let max_diff = reference
        .iter()
        .zip(&result)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        .max(0.0);
    let peak = result.iter().cloned().fold(f64::MIN, f64::max);
    let total: f64 = result.iter().sum();

    println!("  sequential:  {:.3?}", seq_time);
    println!("  mixed-mode:  {:.3?}", mixed_time);
    println!("  max |diff| between the two solutions: {max_diff:.3e}");
    println!("  peak temperature after diffusion: {peak:.3}");
    println!("  total heat (conserved away from the boundaries): {total:.3}");

    let metrics = scheduler.metrics();
    println!(
        "  scheduler: {} teams formed, {} registrations, {} team-task executions",
        metrics.teams_formed, metrics.registrations, metrics.team_tasks_executed
    );
    assert!(max_diff < 1e-9, "mixed-mode result must match the sequential solver");
}
