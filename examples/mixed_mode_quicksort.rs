//! The paper's headline workload: mixed-mode parallel Quicksort
//! (data-parallel partitioning by teams + fork-join recursion), compared on
//! the spot against the fork-join-only version and the sequential reference.
//!
//! ```text
//! cargo run --release --example mixed_mode_quicksort [n] [threads]
//! ```

use teamsteal::{
    fork_join_sort, is_sorted, mixed_mode_sort, std_sort, Distribution, Scheduler, SortConfig,
};
use teamsteal_util::timing::{speedup, time};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 21);
    let threads: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|x| x.get().max(2))
                .unwrap_or(4)
        });

    println!("sorting {n} uniformly random u32 values with {threads} worker threads");
    let input = Distribution::Random.generate(n, threads, 0xC0FFEE);
    let config = SortConfig::default();
    let scheduler = Scheduler::with_threads(threads);

    // Sequential reference (the paper's Seq/STL column).
    let mut seq = input.clone();
    let (t_seq, ()) = time(|| std_sort(&mut seq));
    println!("  Seq/STL                     {:>9.3} s", t_seq.as_secs_f64());

    // Fork-join Quicksort (Algorithm 10) on the work-stealer.
    let mut fork = input.clone();
    let (t_fork, ()) = time(|| fork_join_sort(&scheduler, &mut fork, &config));
    assert!(is_sorted(&fork));
    println!(
        "  Fork (Algorithm 10)         {:>9.3} s   speedup {:>4.2}",
        t_fork.as_secs_f64(),
        speedup(t_seq, t_fork)
    );

    // Mixed-mode Quicksort (Algorithm 11): team-built data-parallel partition.
    let mut mm = input.clone();
    let (t_mm, ()) = time(|| mixed_mode_sort(&scheduler, &mut mm, &config));
    assert!(is_sorted(&mm));
    println!(
        "  MMPar (Algorithm 11)        {:>9.3} s   speedup {:>4.2}",
        t_mm.as_secs_f64(),
        speedup(t_seq, t_mm)
    );
    assert_eq!(seq, mm, "all variants must produce the identical sorted array");

    let m = scheduler.metrics();
    println!(
        "  scheduler: {} teams formed, {} team participations, {} steals, {} tasks",
        m.teams_formed, m.team_tasks_executed, m.steals, m.tasks_executed
    );
    println!(
        "note: on a machine with few hardware threads the parallel variants cannot show real speedup;\n\
         the point of this example is the identical API driving both execution modes."
    );
}
