//! Smoke test guarding the facade API used by `examples/quickstart.rs`: a
//! small scheduler must build, sort a non-trivial input through the
//! mixed-mode path, and report sane metrics.

use teamsteal::{is_permutation_of, is_sorted, Scheduler, SortConfig};

#[test]
fn quickstart_equivalent_sorts_on_two_threads() {
    let scheduler = Scheduler::with_threads(2);
    let original: Vec<u32> = (0..10_000u32).rev().collect();
    let mut data = original.clone();
    teamsteal::mixed_mode_sort(&scheduler, &mut data, &SortConfig::default());
    assert!(is_sorted(&data), "mixed_mode_sort left data unsorted");
    assert!(
        is_permutation_of(&original, &data),
        "mixed_mode_sort lost or duplicated elements"
    );
}

#[test]
fn readme_metrics_walkthrough_works_on_the_facade() {
    // Guards the README "Reading the metrics" snippet (also a doctest on the
    // facade crate and on `Scheduler::metrics`).
    let scheduler = Scheduler::with_threads(2);
    let before = scheduler.metrics();
    scheduler.run_team(2, |ctx| {
        ctx.barrier();
    });
    let delta = scheduler.metrics().delta_since(&before);
    assert_eq!(delta.teams_formed, 1);
    assert!(delta.registrations >= 1);
    assert_eq!(delta.team_tasks_executed, 2);
}

#[test]
fn facade_reexports_cover_the_quickstart_surface() {
    // Compile-time guard: these paths are what README/quickstart advertise.
    let _build = Scheduler::builder;
    let _sort: fn(&Scheduler, &mut [u32], &SortConfig) = teamsteal::mixed_mode_sort;
    let _fork: fn(&Scheduler, &mut [u32], &SortConfig) = teamsteal::fork_join_sort;
    let config = SortConfig::default();
    assert!(config.cutoff > 0);
}
