//! Stress tests for the spawn-path arena and the lock-free injection queue.
//!
//! The task-node arena recycles nodes through an intrusive free list and the
//! injector is a segment-chained MPMC queue; both are exactly the kind of
//! lock-free code whose bugs show up as lost, duplicated or corrupted tasks
//! under concurrency.  These tests hammer them through the public API and
//! verify exactly-once execution, correct completion accounting (a returned
//! scope *is* the pending-counter invariant) and that recycling actually
//! happens (via the scheduler metrics).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::Scheduler;

mod common;
use common::{with_watchdog, WATCHDOG};

/// Steady-state spawn/finish cycles must be served from the recycling arena,
/// not from fresh allocations: after a warm-up scope, the recycled count has
/// to track the spawn count closely.
#[test]
fn steady_state_spawns_recycle_nodes() {
    with_watchdog("steady_state_spawns_recycle_nodes", WATCHDOG, || {
        // One worker makes the accounting deterministic: the same worker
        // spawns, executes and frees every node, so a warmed-up free list
        // must serve the entire second burst.
        let scheduler = Scheduler::with_threads(1);
        const BURST: usize = 20_000;
        let run = || {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            scheduler.scope(|scope| {
                let h = Arc::clone(&h);
                scope.spawn(move |ctx| {
                    for _ in 0..BURST {
                        let h = Arc::clone(&h);
                        ctx.spawn(move |_| {
                            h.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            assert_eq!(hits.load(Ordering::Relaxed), BURST);
        };
        run(); // warm-up: populates the free list with BURST nodes
        let before = scheduler.metrics();
        run();
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.tasks_spawned as usize, BURST);
        assert_eq!(
            delta.nodes_recycled, delta.tasks_spawned,
            "a warmed-up arena must serve every steady-state spawn from the \
             free list"
        );
    });
}

/// Node recycling must never hand the same node to two live tasks: every
/// task carries a unique canary and checks it when it runs.  A node aliased
/// while live would run the wrong closure or a torn one.
#[test]
fn recycled_nodes_never_alias_live_tasks() {
    with_watchdog("recycled_nodes_never_alias_live_tasks", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        const TASKS: usize = 40_000;
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        let s = Arc::clone(&seen);
        scheduler.scope(|scope| {
            let s = Arc::clone(&s);
            scope.spawn(move |ctx| {
                for canary in 0..TASKS {
                    let s = Arc::clone(&s);
                    ctx.spawn(move |_| {
                        // `canary` is captured inline in the recycled node;
                        // a duplicated or corrupted node double-counts.
                        s[canary].fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        for (canary, slot) in seen.iter().enumerate() {
            assert_eq!(
                slot.load(Ordering::Relaxed),
                1,
                "task {canary} ran a wrong number of times"
            );
        }
    });
}

/// Many external threads submitting scopes concurrently: the MPMC injector
/// must deliver every root task exactly once, across producers.
#[test]
fn concurrent_external_submitters_share_the_injector() {
    with_watchdog("concurrent_external_submitters_share_the_injector", WATCHDOG, || {
        const SUBMITTERS: usize = 4;
        const SCOPES_PER_SUBMITTER: usize = 40;
        const TASKS_PER_SCOPE: usize = 25;
        let scheduler = Arc::new(Scheduler::with_threads(4));
        let executed = Arc::new(AtomicUsize::new(0));
        let before = scheduler.metrics();
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let scheduler = Arc::clone(&scheduler);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    for _ in 0..SCOPES_PER_SUBMITTER {
                        let executed = Arc::clone(&executed);
                        scheduler.scope(|scope| {
                            for _ in 0..TASKS_PER_SCOPE {
                                let executed = Arc::clone(&executed);
                                scope.spawn(move |_| {
                                    executed.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for submitter in submitters {
            submitter.join().unwrap();
        }
        let expected = SUBMITTERS * SCOPES_PER_SUBMITTER * TASKS_PER_SCOPE;
        assert_eq!(executed.load(Ordering::Relaxed), expected);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(
            delta.tasks_injected as usize, expected,
            "every root task flows through the injection queue exactly once"
        );
    });
}

/// Team tasks also live in arena nodes (their nodes are recycled by whichever
/// member finishes last, usually not the spawning worker): cross-worker frees
/// must not corrupt the free lists.
#[test]
fn team_task_nodes_survive_cross_worker_recycling() {
    with_watchdog("team_task_nodes_survive_cross_worker_recycling", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let hits = Arc::new(AtomicUsize::new(0));
        const ROUNDS: usize = 120;
        let h = Arc::clone(&hits);
        scheduler.scope(|scope| {
            let h = Arc::clone(&h);
            // Root task spawns team tasks from a worker thread so their
            // nodes come from the worker's arena.
            scope.spawn(move |ctx| {
                for _ in 0..ROUNDS {
                    let h = Arc::clone(&h);
                    ctx.spawn_team(2, move |tctx| {
                        h.fetch_add(1, Ordering::Relaxed);
                        tctx.barrier();
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), ROUNDS * 2);
    });
}

/// Oversized closures fall back to boxed storage; mixing inline and boxed
/// jobs in one scope must not confuse the recycling protocol.
#[test]
fn oversized_captures_mix_with_inline_ones() {
    with_watchdog("oversized_captures_mix_with_inline_ones", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(2);
        let small_sum = Arc::new(AtomicUsize::new(0));
        let big_sum = Arc::new(AtomicUsize::new(0));
        const N: usize = 2_000;
        {
            let small_sum = Arc::clone(&small_sum);
            let big_sum = Arc::clone(&big_sum);
            scheduler.scope(|scope| {
                let small_sum = Arc::clone(&small_sum);
                let big_sum = Arc::clone(&big_sum);
                scope.spawn(move |ctx| {
                    for i in 0..N {
                        if i % 2 == 0 {
                            let s = Arc::clone(&small_sum);
                            ctx.spawn(move |_| {
                                s.fetch_add(i, Ordering::Relaxed);
                            });
                        } else {
                            // 32 words of captured payload: far beyond the
                            // inline area, so this lands in the boxed path.
                            let payload = [i; 32];
                            let b = Arc::clone(&big_sum);
                            ctx.spawn(move |_| {
                                b.fetch_add(payload.iter().sum::<usize>() / 32, Ordering::Relaxed);
                            });
                        }
                    }
                });
            });
        }
        let expected_small: usize = (0..N).filter(|i| i % 2 == 0).sum();
        let expected_big: usize = (0..N).filter(|i| i % 2 == 1).sum();
        assert_eq!(small_sum.load(Ordering::Relaxed), expected_small);
        assert_eq!(big_sum.load(Ordering::Relaxed), expected_big);
    });
}
