//! Watchdogged integration tests for the multi-tenant task service
//! (`teamsteal::service`, DESIGN.md §16): weighted fairness under offered
//! skew, backlog bounded by the high-water shed gate, the drain-vs-submit
//! race, clean submit-after-drain failure, and the external-pin pool sized
//! to the declared submitter concurrency.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal::service::{
    AdmissionPolicy, ServiceBuilder, SubmitError, TaskService, TenantConfig,
};

mod common;
use common::{with_watchdog, WATCHDOG};

/// 99:1 offered load against equal weights: both tenants saturate their
/// token budgets, so *admitted* (and hence completed) work must track the
/// weights — about 1:1 — not the offered skew.  The tolerance is generous
/// (2× either way) because the refill clock runs on wall time under an
/// oversubscribed CI host.
#[test]
fn tenant_skew_fairness_tracks_weights_not_offered_load() {
    with_watchdog("tenant_skew_fairness", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(2)
            .refill_rate(2_000)
            .tenant(TenantConfig::new("hot").weight(1).burst(1))
            .tenant(TenantConfig::new("cold").weight(1).burst(1))
            .build();
        let hot = service.tenant("hot").unwrap();
        let cold = service.tenant("cold").unwrap();
        let start = Instant::now();
        // One driving thread keeps the probe interleaving exact: 99 hot
        // offers per cold offer, both far above the 2 000/s refill rate.
        while start.elapsed() < Duration::from_millis(300) {
            for _ in 0..99 {
                let _ = hot.submit(|_| {});
            }
            let _ = cold.submit(|_| {});
        }
        let report = service.drain();
        let hot_stats = hot.stats();
        let cold_stats = cold.stats();
        // The skew reached the admission layer…
        assert!(hot_stats.offered >= 99 * cold_stats.offered);
        // …but admitted work followed the (equal) weights.
        assert!(
            cold_stats.admitted > 0,
            "cold tenant starved: {cold_stats:?}"
        );
        let ratio = hot_stats.admitted as f64 / cold_stats.admitted as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "admitted ratio {ratio:.2} strayed from the 1:1 weight ratio \
             (hot {hot_stats:?}, cold {cold_stats:?})"
        );
        // Exactly-once completion and per-tenant conservation.
        assert_eq!(report.completed(), report.admitted());
        for stats in [hot_stats, cold_stats] {
            assert_eq!(
                stats.admitted + stats.rejected + stats.shed + stats.drain_rejected,
                stats.offered
            );
        }
    });
}

/// With a tiny high-water mark and slow tasks on one worker, storming
/// submitters must never grow the injector backlog beyond
/// `high_water + submitters`: each submitter can observe a backlog at the
/// mark and still push its one admitted task, but nothing more.
#[test]
fn backpressure_bounds_backlog_at_high_water() {
    const HIGH_WATER: usize = 64;
    const SUBMITTERS: usize = 4;
    with_watchdog("backpressure_bounds_backlog", WATCHDOG, || {
        let service = Arc::new(
            ServiceBuilder::new()
                .threads(1)
                .refill_rate(10_000_000)
                .high_water(HIGH_WATER)
                .tenant(TenantConfig::new("storm").burst(1 << 20).max_concurrency(SUBMITTERS))
                .build(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let max_backlog = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|threads| {
            for _ in 0..SUBMITTERS {
                let tenant = service.tenant("storm").unwrap();
                let stop = Arc::clone(&stop);
                threads.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // ~20 µs of work per task keeps the single worker
                        // the bottleneck so the backlog actually fills.
                        let _ = tenant.submit(|_| {
                            let t = Instant::now();
                            while t.elapsed() < Duration::from_micros(20) {
                                std::hint::spin_loop();
                            }
                        });
                    }
                });
            }
            // Sample the per-shard gauges while the storm runs.
            let deadline = Instant::now() + Duration::from_millis(200);
            while Instant::now() < deadline {
                let backlog: usize = service.scheduler().injector_shard_lens().iter().sum();
                max_backlog.fetch_max(backlog, Ordering::Relaxed);
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        let observed = max_backlog.load(Ordering::Relaxed);
        assert!(
            observed <= HIGH_WATER + SUBMITTERS,
            "backlog reached {observed}, above high-water {HIGH_WATER} + {SUBMITTERS} in-flight submitters"
        );
        let report = service.drain();
        let stats = &report.tenants[0].1;
        assert!(stats.shed > 0, "storm never hit the shed gate: {stats:?}");
        assert_eq!(report.completed(), report.admitted());
    });
}

/// Submitters storm while a drain fires mid-storm: nothing admitted is
/// lost, nothing runs twice, no task observes the world after `drain()`
/// returned, and post-drain submissions fail with `Draining`.
#[test]
fn drain_vs_submit_race_loses_and_duplicates_nothing() {
    const SUBMITTERS: usize = 4;
    with_watchdog("drain_vs_submit_race", WATCHDOG, || {
        let service = Arc::new(
            ServiceBuilder::new()
                .threads(2)
                .refill_rate(10_000_000)
                .tenant(TenantConfig::new("race").burst(1 << 20).max_concurrency(SUBMITTERS))
                .build(),
        );
        let executed = Arc::new(AtomicU64::new(0));
        let drained_flag = Arc::new(AtomicBool::new(false));
        let post_drain_runs = Arc::new(AtomicU64::new(0));
        let accepted = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|threads| {
            for _ in 0..SUBMITTERS {
                let tenant = service.tenant("race").unwrap();
                let executed = Arc::clone(&executed);
                let drained_flag = Arc::clone(&drained_flag);
                let post_drain_runs = Arc::clone(&post_drain_runs);
                let accepted = Arc::clone(&accepted);
                let stop = Arc::clone(&stop);
                threads.spawn(move || {
                    let mut saw_draining = false;
                    while !(saw_draining && stop.load(Ordering::Relaxed)) {
                        let executed = Arc::clone(&executed);
                        let drained_flag = Arc::clone(&drained_flag);
                        let post_drain_runs = Arc::clone(&post_drain_runs);
                        match tenant.submit(move |_| {
                            if drained_flag.load(Ordering::SeqCst) {
                                post_drain_runs.fetch_add(1, Ordering::SeqCst);
                            }
                            executed.fetch_add(1, Ordering::SeqCst);
                        }) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(SubmitError::Draining) => saw_draining = true,
                            // Release-built submitters outrun the two
                            // workers, so the storm legitimately trips the
                            // high-water shed; the test is about the drain
                            // race, not shedding, so back off and re-offer.
                            Err(SubmitError::Overloaded) => std::thread::yield_now(),
                            Err(other) => panic!("unexpected error {other:?}"),
                        }
                    }
                });
            }
            // Let the storm build, then drain from the main thread while
            // the submitters keep racing.
            std::thread::sleep(Duration::from_millis(20));
            let report = service.drain();
            // Every task the gate admitted ran to completion before
            // drain() returned, and only then do we raise the flag…
            drained_flag.store(true, Ordering::SeqCst);
            assert!(report.initiated);
            assert_eq!(
                executed.load(Ordering::SeqCst),
                report.admitted(),
                "admitted tasks lost or duplicated across the drain"
            );
            stop.store(true, Ordering::Relaxed);
        });
        // …so no admitted task can have observed the post-drain world.
        assert_eq!(
            post_drain_runs.load(Ordering::SeqCst),
            0,
            "a task ran after drain() returned"
        );
        assert_eq!(
            executed.load(Ordering::SeqCst),
            accepted.load(Ordering::SeqCst),
            "every accepted submission ran exactly once"
        );
        // Submitters observed the drain and later submissions fail clean.
        let tenant = service.tenant("race").unwrap();
        assert_eq!(tenant.submit(|_| {}), Err(SubmitError::Draining));
        assert!(tenant.stats().drain_rejected > 0);
    });
}

/// A drained service fails every submission path cleanly — sequential,
/// team, and blocking-policy tenants (a blocked submitter must abort its
/// wait rather than sleep out its bound).
#[test]
fn submit_after_drain_fails_cleanly() {
    with_watchdog("submit_after_drain", WATCHDOG, || {
        let service: TaskService = ServiceBuilder::new()
            .threads(2)
            .refill_rate(1) // budget exhausted after the 1-task burst
            .tenant(
                TenantConfig::new("blocked")
                    .burst(1)
                    .policy(AdmissionPolicy::Block(Duration::from_secs(60))),
            )
            .build();
        let tenant = service.tenant("blocked").unwrap();
        tenant.submit(|_| {}).unwrap(); // consumes the whole burst
        // A submitter blocked on the empty budget aborts when drain begins
        // (well before its 60 s bound — the watchdog enforces this).
        let blocked = {
            let tenant = tenant.clone();
            std::thread::spawn(move || tenant.submit(|_| {}))
        };
        std::thread::sleep(Duration::from_millis(20));
        let report = service.drain();
        assert_eq!(report.admitted(), 1);
        assert_eq!(report.completed(), 1);
        assert_eq!(blocked.join().unwrap(), Err(SubmitError::Draining));
        assert_eq!(tenant.submit(|_| {}), Err(SubmitError::Draining));
        assert_eq!(tenant.submit_team(2, |_| {}), Err(SubmitError::Draining));
        let stats = tenant.stats();
        assert_eq!(
            stats.admitted + stats.rejected + stats.shed + stats.drain_rejected,
            stats.offered
        );
    });
}

/// Regression for the `ExternalPins` convoy (PR 9 satellite): with the pin
/// pool auto-sized from the tenants' declared concurrency, a submitter
/// storm at exactly that concurrency never exhausts the pool —
/// `external_pin_waits` stays 0.
#[test]
fn external_pin_pool_scales_to_declared_concurrency() {
    const SUBMITTERS: usize = 48;
    const PER_SUBMITTER: usize = 200;
    with_watchdog("external_pin_pool_scales", WATCHDOG, || {
        let service = Arc::new(
            ServiceBuilder::new()
                .threads(2)
                .refill_rate(100_000_000)
                .tenant(
                    TenantConfig::new("wide")
                        .burst(1 << 20)
                        .max_concurrency(SUBMITTERS),
                )
                .build(),
        );
        // The auto-sizing covered the declared concurrency (48 > the old
        // fixed pool of 32, which this storm used to convoy on).
        assert_eq!(service.scheduler().external_pin_slots(), SUBMITTERS);
        std::thread::scope(|threads| {
            for _ in 0..SUBMITTERS {
                let tenant = service.tenant("wide").unwrap();
                threads.spawn(move || {
                    for _ in 0..PER_SUBMITTER {
                        tenant.submit(|_| {}).unwrap();
                    }
                });
            }
        });
        let report = service.drain();
        assert_eq!(report.admitted(), (SUBMITTERS * PER_SUBMITTER) as u64);
        assert_eq!(report.completed(), report.admitted());
        assert_eq!(
            service.scheduler().metrics().external_pin_waits,
            0,
            "submitters waited for epoch-pin slots at the declared concurrency"
        );
    });
}
