//! Shared helpers for the integration tests.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

/// Default watchdog budget for scheduler stress tests.  Generous enough for
/// a heavily oversubscribed single-CPU CI host; a healthy run finishes these
/// tests in well under a second.
pub const WATCHDOG: Duration = Duration::from_secs(90);

/// Runs `body` on a helper thread and aborts the whole test process with a
/// diagnostic if it has not finished within `timeout`.
///
/// A scheduler liveness bug used to manifest as a silent 40-minute hang (see
/// ROADMAP "scheduler liveness flake"); under the watchdog a recurrence is a
/// fast, loud failure instead.  On timeout the watchdog flips on the
/// scheduler's stall-state dumps ([`teamsteal::enable_stall_debug`]), gives
/// the wedged workers a few seconds to print a thread-state dump of every
/// worker, and then aborts.
///
/// Panics from `body` propagate normally, so assertion failures keep their
/// messages.
pub fn with_watchdog<F>(name: &str, timeout: Duration, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let thread = std::thread::Builder::new()
        .name(format!("watchdog-body-{name}"))
        .spawn(move || {
            body();
            // A panicking body drops the sender without sending; the watchdog
            // side distinguishes that from a timeout.
            let _ = done_tx.send(());
        })
        .expect("failed to spawn watchdog body thread");
    match done_rx.recv_timeout(timeout) {
        Ok(()) => {
            thread.join().expect("watchdog body panicked after completing");
        }
        Err(RecvTimeoutError::Disconnected) => {
            // The body panicked: re-raise it on the test thread.
            match thread.join() {
                Ok(()) => unreachable!("body completed without signalling"),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            eprintln!(
                "[watchdog] test '{name}' still running after {timeout:?} — \
                 scheduler liveness regression.  Dumping scheduler state, then \
                 enabling worker stall self-reports for ~5s before aborting."
            );
            // Same code path as `Scheduler::debug_state` and the workers'
            // periodic stall self-reports, so the immediate dump below and
            // the self-reports that follow are directly comparable.
            for (i, line) in teamsteal::stall_report().iter().enumerate() {
                eprintln!("[watchdog] scheduler #{i}: {line}");
            }
            teamsteal::enable_stall_debug();
            std::thread::sleep(Duration::from_secs(5));
            for (i, line) in teamsteal::stall_report().iter().enumerate() {
                eprintln!("[watchdog] scheduler #{i} (after 5s): {line}");
            }
            eprintln!("[watchdog] aborting '{name}'.");
            std::process::abort();
        }
    }
}
