//! Stress and failure-injection tests for the team-building scheduler.
//!
//! These tests hammer the coordination machinery in ways the regular
//! workloads do not: many small teams in quick succession, team sizes that
//! oscillate (forcing shrink / disband / rebuild, Section 3 of the paper),
//! heavy oversubscription of the host, spawning from inside team members,
//! empty scopes, and panics inside team tasks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, StealPolicy};

mod common;
use common::{with_watchdog, WATCHDOG};

/// Many consecutive small team tasks: the team for a given size should be
/// rebuilt or reused without ever losing a member execution.
#[test]
fn rapid_fire_small_teams() {
    with_watchdog("rapid_fire_small_teams", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let hits = Arc::new(AtomicUsize::new(0));
        const ROUNDS: usize = 30;
        for _ in 0..ROUNDS {
            let hits = Arc::clone(&hits);
            scheduler.run_team(2, move |ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2 * ROUNDS);
    });
}

/// Alternating team sizes force the coordinator to shrink and rebuild teams
/// (same size ⇒ reuse, smaller ⇒ shrink, larger ⇒ disband + rebuild).
#[test]
fn oscillating_team_sizes() {
    with_watchdog("oscillating_team_sizes", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let total = Arc::new(AtomicUsize::new(0));
        let sizes = [2usize, 4, 2, 1, 4, 1, 2, 4];
        scheduler.scope(|scope| {
            for &r in &sizes {
                let total = Arc::clone(&total);
                if r == 1 {
                    scope.spawn(move |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                } else {
                    scope.spawn_team(r, move |ctx| {
                        assert!(ctx.team_size() >= ctx.requested_threads());
                        total.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
            }
        });
        let expected: usize = sizes.iter().sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    });
}

/// Team members spawning further work from inside the team task: spawned
/// children are ordinary r = 1 tasks owned by the member's worker.
#[test]
fn team_members_spawn_sequential_children() {
    let scheduler = Scheduler::with_threads(4);
    let children = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&children);
    scheduler.run_team(4, move |ctx| {
        for _ in 0..8 {
            let c = Arc::clone(&c);
            ctx.spawn(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.barrier();
    });
    assert_eq!(children.load(Ordering::Relaxed), 4 * 8);
}

/// A team task whose members recursively spawn smaller team tasks — the
/// mixed-mode Quicksort pattern reduced to its skeleton.
#[test]
fn nested_team_tasks_from_leader() {
    let scheduler = Scheduler::with_threads(4);
    let leaf_hits = Arc::new(AtomicUsize::new(0));
    let l = Arc::clone(&leaf_hits);
    scheduler.run_team(4, move |ctx| {
        ctx.barrier();
        if ctx.local_id() == 0 {
            for _ in 0..2 {
                let l = Arc::clone(&l);
                ctx.spawn_team(2, move |inner| {
                    l.fetch_add(1, Ordering::Relaxed);
                    inner.barrier();
                });
            }
        }
    });
    // Two r = 2 teams, each executing on 2 members.
    assert_eq!(leaf_hits.load(Ordering::Relaxed), 4);
}

/// Oversubscription: more scheduler threads than the host has hardware
/// threads (this container typically has one core).  Everything must still
/// complete, just slower.
#[test]
fn oversubscribed_scheduler_completes() {
    with_watchdog("oversubscribed_scheduler_completes", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(8);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        scheduler.run_team(8, move |ctx| {
            h.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);

        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        scheduler.scope(|scope| {
            for _ in 0..150 {
                let c = Arc::clone(&c);
                scope.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    });
}

/// Empty scopes, scopes returning values, and repeated reuse of one
/// scheduler must be cheap and correct.
#[test]
fn empty_scopes_and_return_values() {
    let scheduler = Scheduler::with_threads(2);
    for i in 0..50 {
        let out = scheduler.scope(|_| i * 2);
        assert_eq!(out, i * 2);
    }
}

/// A panicking team member must not wedge the scheduler: the panic propagates
/// out of the scope and the scheduler stays usable.
#[test]
fn panicking_team_task_propagates_and_scheduler_survives() {
    let scheduler = Scheduler::with_threads(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scheduler.run_team(2, |ctx| {
            ctx.barrier();
            if ctx.local_id() == 0 {
                panic!("injected team failure");
            }
        });
    }));
    assert!(result.is_err(), "the injected panic must reach the caller");

    // The pool is still alive and can run both task kinds.
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    scheduler.run_team(2, move |ctx| {
        h.fetch_add(1, Ordering::Relaxed);
        ctx.barrier();
    });
    assert_eq!(hits.load(Ordering::Relaxed), 2);
}

/// Very many tiny sequential tasks under the randomized-within-level policy:
/// exercises stealing heavily without any team machinery.
#[test]
fn task_storm_with_randomized_stealing() {
    with_watchdog("task_storm_with_randomized_stealing", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::RandomizedWithinLevel)
            .seed(0xFEED)
            .build();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        scheduler.scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move |ctx| {
                    for _ in 0..48 {
                        let c = Arc::clone(&c);
                        ctx.spawn(move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 48);
        let m = scheduler.metrics();
        assert_eq!(m.teams_formed, 0, "r = 1 storms must not touch team machinery");
        assert!(m.total_executions() >= 8 * 48);
    });
}

/// Very many tiny sequential tasks under the classic uniformly random
/// work-stealing policy (the paper's *Randfork* baseline): no hierarchy, no
/// team machinery — victims are chosen uniformly at random, so this is the
/// only stress coverage the `UniformRandom` partner path gets.  The storm
/// repeats until random-victim steals are observed, so the metrics
/// assertion cannot flake on a single-CPU host where the producer often
/// finishes before a thief wins a race.
#[test]
fn task_storm_with_uniform_random_stealing() {
    with_watchdog("task_storm_with_uniform_random_stealing", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::UniformRandom)
            .seed(0xD1CE)
            .build();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let before = scheduler.metrics();
            let counter = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&counter);
            scheduler.scope(|scope| {
                for _ in 0..4 {
                    let c = Arc::clone(&c);
                    scope.spawn(move |ctx| {
                        for _ in 0..96 {
                            let c = Arc::clone(&c);
                            ctx.spawn(move |_| {
                                // Enough work per task that the producer's
                                // queue stays stealable for a while.
                                let mut acc = 0u64;
                                for i in 0..512u64 {
                                    acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
                                }
                                std::hint::black_box(acc);
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 4 * 96);
            let delta = scheduler.metrics().delta_since(&before);
            assert_eq!(
                delta.teams_formed, 0,
                "UniformRandom must never touch the team machinery"
            );
            assert_eq!(delta.registrations, 0);
            if delta.steals > 0 {
                assert!(delta.tasks_stolen > 0);
                break;
            }
            // No steal this round (single-CPU scheduling luck): run another
            // storm.  The watchdog bounds the overall attempt budget.
            assert!(
                rounds < 10_000,
                "uniformly random thieves never stole anything"
            );
        }
    });
}

/// Full-machine teams built repeatedly while sequential stragglers are in
/// flight: large teams must still form (Lemma 1: every task eventually runs).
#[test]
fn full_machine_teams_with_straggler_tasks() {
    with_watchdog("full_machine_teams_with_straggler_tasks", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let team_hits = Arc::new(AtomicUsize::new(0));
        let seq_hits = Arc::new(AtomicUsize::new(0));
        scheduler.scope(|scope| {
            for i in 0..6 {
                let seq_hits = Arc::clone(&seq_hits);
                scope.spawn(move |_| {
                    // A little uneven busy work so workers become idle at
                    // different times while the full-machine team is pending.
                    let mut acc = 0u64;
                    for k in 0..(i + 1) * 4_000 {
                        acc = acc.wrapping_add(k as u64).rotate_left(7);
                    }
                    assert!(acc != 1);
                    seq_hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            let team_hits = Arc::clone(&team_hits);
            scope.spawn_team(4, move |ctx| {
                team_hits.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
        });
        assert_eq!(seq_hits.load(Ordering::Relaxed), 6);
        assert_eq!(team_hits.load(Ordering::Relaxed), 4);
    });
}
