//! Integration tests for the event-driven parking subsystem (DESIGN.md §12):
//! idle workers must actually park (not sleep-poll), external submissions
//! and team handshakes must wake them through notifications (not the
//! defensive backstop), and shutdown must never hang on a sleeper.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal::{Scheduler, StealPolicy};

mod common;
use common::{with_watchdog, WATCHDOG};

/// Polls `f` until it returns true or the deadline passes.
fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    f()
}

/// An idle scheduler's workers end up parked on the eventcount instead of
/// cycling timed sleeps.
#[test]
fn idle_workers_park() {
    let scheduler = Scheduler::with_threads(4);
    scheduler.run(|_| {});
    assert!(
        eventually(Duration::from_secs(5), || scheduler.metrics().parks >= 3),
        "idle workers never parked; metrics: {:?}",
        scheduler.metrics()
    );
}

/// External submissions into a parked scheduler are completed through
/// notified wakeups, and the wake-latency histogram records them.
#[test]
fn external_submit_wakes_parked_workers() {
    let scheduler = Scheduler::with_threads(4);
    scheduler.run(|_| {});
    // Let the workers park.
    assert!(eventually(Duration::from_secs(5), || {
        scheduler.metrics().parks >= 3
    }));
    let before = scheduler.metrics();
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(3));
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        scheduler.scope(|scope| {
            scope.spawn(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
    let delta = scheduler.metrics().delta_since(&before);
    assert!(
        delta.wakeups > 0,
        "20 submissions into a parked scheduler produced no notified wakeups: {delta:?}"
    );
    assert!(
        delta.wake_latency.total() > 0,
        "no wake latencies recorded: {delta:?}"
    );
}

/// Team formation, publication and the start countdown all cross parked
/// workers; the handshakes must complete through notifications with no
/// timed polling left to hide a lost wakeup.  Backstop wakes are tolerated
/// only in trace amounts (scheduling noise on an oversubscribed host), not
/// as the mechanism that makes progress.
#[test]
fn team_handshakes_wake_parked_members() {
    with_watchdog("team_handshakes_wake_parked_members", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let before_all = scheduler.metrics();
        for round in 0..10 {
            // Let everyone park between team tasks, so every handshake
            // (announcement, registration, publication, countdown) has to
            // cross a parked worker.
            std::thread::sleep(Duration::from_millis(5));
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            scheduler.run_team(4, move |ctx| {
                h.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "round {round}");
        }
        let delta = scheduler.metrics().delta_since(&before_all);
        assert_eq!(delta.teams_formed, 10);
        assert!(delta.parks > 0, "teams formed without any parking: {delta:?}");
        assert_eq!(
            delta.liveness_resyncs, 0,
            "healthy team rounds must not trip the liveness backstops: {delta:?}"
        );
        // Progress must come from notifications: the 100 ms backstop could
        // deliver at most ~10 wakes per second of runtime, and a run that
        // *relied* on it would be visibly slow; a healthy run shows
        // notified wakeups dominating.
        assert!(
            delta.wakeups > delta.spurious_wakes,
            "backstop wakes dominate notified wakes: {delta:?}"
        );
    });
}

/// Dropping a scheduler whose workers are all parked must complete promptly
/// (shutdown broadcasts through the eventcount).
#[test]
fn shutdown_wakes_parked_workers() {
    with_watchdog("shutdown_wakes_parked_workers", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        scheduler.run(|_| {});
        assert!(eventually(Duration::from_secs(5), || {
            scheduler.metrics().parks >= 3
        }));
        let start = Instant::now();
        drop(scheduler);
        // Well under the backstop: shutdown must not wait for timeouts.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop took {:?}",
            start.elapsed()
        );
    });
}

/// A scheduler with a tiny park backstop stays correct: the backstop is a
/// defensive re-check, not a correctness mechanism, so shrinking it must
/// only add spurious wakes, never lose work.
#[test]
fn tiny_backstop_only_adds_spurious_wakes() {
    with_watchdog("tiny_backstop_only_adds_spurious_wakes", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .park_backstop(Duration::from_millis(1))
            .park_spin_rounds(0)
            .build();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            scheduler.scope(|scope| {
                for _ in 0..16 {
                    let c = Arc::clone(&c);
                    scope.spawn(move |ctx| {
                        let child = Arc::clone(&c);
                        ctx.spawn(move |_| {
                            child.fetch_add(1, Ordering::Relaxed);
                        });
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20 * 16 * 2);
    });
}

/// The parking subsystem under the randomized-within-level policy: mixed
/// team and sequential traffic with parking pauses in between.
#[test]
fn parking_survives_randomized_mixed_traffic() {
    with_watchdog("parking_survives_randomized_mixed_traffic", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::RandomizedWithinLevel)
            .seed(0xBEEF)
            .build();
        let total = Arc::new(AtomicUsize::new(0));
        for round in 0..8 {
            std::thread::sleep(Duration::from_millis(3));
            let t = Arc::clone(&total);
            scheduler.scope(|scope| {
                for _ in 0..8 {
                    let t = Arc::clone(&t);
                    scope.spawn(move |_| {
                        t.fetch_add(1, Ordering::Relaxed);
                    });
                }
                let t = Arc::clone(&t);
                scope.spawn_team(2, move |ctx| {
                    t.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
            });
            assert_eq!(
                total.load(Ordering::Relaxed),
                (round + 1) * (8 + 2),
                "round {round}"
            );
        }
    });
}
