//! Watchdogged integration tests for the SLO-enforcement layer
//! (`teamsteal::service`, DESIGN.md §17): cancellation before pop never
//! executes, deadline expiry drops work at claim time, retries recover
//! from backpressure, the report surfaces panics and gate backstops, and
//! `TaskService::drop` stays live with submitters blocked in bounded-block
//! admission while tasks are mid-flight.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use teamsteal::service::{
    AdmissionPolicy, CancelToken, RetryPolicy, ServiceBuilder, SubmitError, SubmitOptions,
    TenantConfig,
};

mod common;
use common::{with_watchdog, WATCHDOG};

/// Spins until `release` flips, parking the worker that runs it.  Used to
/// pin tasks in the injector: while the blocker occupies the only worker,
/// nothing behind it can be popped.
fn blocker(
    release: &Arc<AtomicBool>,
) -> impl for<'a, 'b> FnOnce(&'a teamsteal::TaskContext<'b>) + Send + 'static {
    let release = Arc::clone(release);
    move |_| {
        while !release.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
}

/// A task cancelled while still queued is dropped at pop time: it never
/// runs, never increments `tasks_executed`, and is counted in
/// `tasks_cancelled` — yet its completion guard still retires it, so the
/// handle finishes and the drain accounting stays exactly-once.
#[test]
fn cancelled_before_pop_never_increments_tasks_executed() {
    with_watchdog("cancelled_before_pop", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(TenantConfig::new("t").burst(8))
            .build();
        let tenant = service.tenant("t").unwrap();
        let release = Arc::new(AtomicBool::new(false));
        tenant.submit(blocker(&release)).unwrap();

        let ran = Arc::new(AtomicBool::new(false));
        let ran_in = Arc::clone(&ran);
        let handle = tenant
            .submit_with(SubmitOptions::new(), move |_| {
                ran_in.store(true, Ordering::SeqCst);
            })
            .unwrap();
        assert!(!handle.is_finished(), "task cannot finish behind the blocker");
        assert!(handle.cancel(), "cancel must win while the task is queued");
        assert!(handle.is_cancelled());
        assert!(!handle.cancel(), "second cancel does not win again");

        release.store(true, Ordering::Release);
        let report = service.drain();
        assert!(!ran.load(Ordering::SeqCst), "cancelled task must never run");
        assert!(handle.is_finished(), "dropped tasks still finish their guard");
        // Accounting: the blocker executed, the cancelled task did not, and
        // both retired exactly once.
        let metrics = service.metrics();
        assert_eq!(metrics.tasks_executed, 1, "only the blocker may execute");
        assert_eq!(metrics.tasks_cancelled, 1);
        assert_eq!(metrics.tasks_expired, 0);
        assert_eq!(report.completed(), report.admitted());
        assert_eq!(service.report().tasks_cancelled, 1);
    });
}

/// A queued task whose deadline (here the tenant's `default_deadline`)
/// passes before any worker claims it is dropped at pop time and counted
/// in `tasks_expired`, without ever running.
#[test]
fn expired_task_is_dropped_at_claim_time() {
    with_watchdog("expired_before_pop", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(
                TenantConfig::new("t")
                    .burst(8)
                    .default_deadline(Duration::from_millis(5)),
            )
            .build();
        let tenant = service.tenant("t").unwrap();
        let release = Arc::new(AtomicBool::new(false));
        tenant.submit(blocker(&release)).unwrap();

        let ran = Arc::new(AtomicBool::new(false));
        let ran_in = Arc::clone(&ran);
        // No explicit deadline: the tenant default applies.
        let handle = tenant
            .submit_with(SubmitOptions::new(), move |_| {
                ran_in.store(true, Ordering::SeqCst);
            })
            .unwrap();
        // Let the default deadline lapse while the task is still queued.
        std::thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::Release);
        let report = service.drain();

        assert!(!ran.load(Ordering::SeqCst), "expired task must never run");
        assert!(handle.is_finished());
        assert!(handle.is_expired(), "expiry must be visible on the handle");
        assert!(
            !handle.is_cancelled(),
            "expiry must not masquerade as cancellation"
        );
        let metrics = service.metrics();
        assert_eq!(metrics.tasks_executed, 1, "only the blocker may execute");
        assert_eq!(metrics.tasks_expired, 1);
        assert_eq!(report.completed(), report.admitted());
        assert_eq!(service.report().tasks_expired, 1);
    });
}

/// The batch fan-out contract of a shared [`CancelToken`]: each
/// submission keeps its own claim cell, so an *uncancelled* shared token
/// never stops any batch member from running.  (Regression: a one-shot
/// cell shared across the batch let only the first claimer run and
/// miscounted the rest as cancelled.)
#[test]
fn shared_token_batch_all_run_when_uncancelled() {
    const BATCH: usize = 8;
    with_watchdog("shared_token_all_run", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(2)
            .tenant(TenantConfig::new("t").burst(16))
            .build();
        let tenant = service.tenant("t").unwrap();
        let token = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..BATCH)
            .map(|_| {
                let ran = Arc::clone(&ran);
                tenant
                    .submit_with(SubmitOptions::new().cancel_token(token.clone()), move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    })
                    .unwrap()
            })
            .collect();
        service.drain();
        assert_eq!(
            ran.load(Ordering::SeqCst),
            BATCH,
            "every member of an uncancelled batch must execute"
        );
        for handle in &handles {
            assert!(handle.is_finished());
            assert!(!handle.is_cancelled());
            assert!(!handle.is_expired());
        }
        let metrics = service.metrics();
        assert_eq!(metrics.tasks_executed, BATCH as u64);
        assert_eq!(metrics.tasks_cancelled, 0);
        assert_eq!(metrics.tasks_expired, 0);
    });
}

/// A single `CancelToken::cancel` sweeps every queued task sharing the
/// token: none run, each is counted in `tasks_cancelled`, and each
/// handle reports per-task cancellation — while a task submitted with
/// its own token is untouched by the sweep.
#[test]
fn shared_token_cancel_sweeps_whole_batch() {
    const BATCH: usize = 3;
    with_watchdog("shared_token_sweep", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(TenantConfig::new("t").burst(16))
            .build();
        let tenant = service.tenant("t").unwrap();
        let release = Arc::new(AtomicBool::new(false));
        tenant.submit(blocker(&release)).unwrap();

        let token = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..BATCH)
            .map(|_| {
                let ran = Arc::clone(&ran);
                tenant
                    .submit_with(SubmitOptions::new().cancel_token(token.clone()), move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    })
                    .unwrap()
            })
            .collect();
        // A bystander with its own (default) token must survive the sweep.
        let bystander_ran = Arc::new(AtomicBool::new(false));
        let bystander_ran_in = Arc::clone(&bystander_ran);
        let bystander = tenant
            .submit_with(SubmitOptions::new(), move |_| {
                bystander_ran_in.store(true, Ordering::SeqCst);
            })
            .unwrap();

        assert!(token.cancel(), "the sweep must win at least one race");
        assert!(token.is_cancelled());
        assert!(!token.cancel(), "a second sweep has nothing left to win");

        release.store(true, Ordering::Release);
        let report = service.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "swept tasks must never run");
        assert!(bystander_ran.load(Ordering::SeqCst), "bystander must run");
        for handle in &handles {
            assert!(handle.is_finished());
            assert!(handle.is_cancelled(), "sweep must be visible per task");
        }
        assert!(!bystander.is_cancelled());
        let metrics = service.metrics();
        // The blocker and the bystander executed; the batch did not.
        assert_eq!(metrics.tasks_executed, 2);
        assert_eq!(metrics.tasks_cancelled, BATCH as u64);
        assert_eq!(report.completed(), report.admitted());
    });
}

/// Cancelling a token *before* submitting through it poisons it: the
/// submission is admitted but dropped at claim time, never running.
#[test]
fn cancelled_token_poisons_later_submissions() {
    with_watchdog("poisoned_token", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(TenantConfig::new("t").burst(8))
            .build();
        let tenant = service.tenant("t").unwrap();
        let token = CancelToken::new();
        assert!(!token.cancel(), "nothing attached yet — no race to win");
        let ran = Arc::new(AtomicBool::new(false));
        let ran_in = Arc::clone(&ran);
        let handle = tenant
            .submit_with(SubmitOptions::new().cancel_token(token.clone()), move |_| {
                ran_in.store(true, Ordering::SeqCst);
            })
            .unwrap();
        service.drain();
        assert!(!ran.load(Ordering::SeqCst), "poisoned submission must not run");
        assert!(handle.is_finished());
        assert!(handle.is_cancelled());
        assert_eq!(service.metrics().tasks_cancelled, 1);
    });
}

/// Effectively-infinite durations are "no deadline"/"no bound"
/// sentinels, not panics: `Duration::MAX` as a per-task deadline, a
/// tenant default, or a `Block` admission bound must all submit and run
/// normally (regression: unchecked `Instant::now() + d` overflowed).
#[test]
fn huge_durations_mean_no_deadline_not_a_panic() {
    with_watchdog("huge_durations", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(
                TenantConfig::new("t")
                    .burst(8)
                    .default_deadline(Duration::MAX)
                    .policy(AdmissionPolicy::Block(Duration::MAX)),
            )
            .build();
        let tenant = service.tenant("t").unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        // One submission exercises the explicit-deadline path, the other
        // the tenant-default path.
        let opts = [
            SubmitOptions::new().deadline(Duration::MAX),
            SubmitOptions::new(),
        ];
        for opts in opts {
            let ran = Arc::clone(&ran);
            tenant
                .submit_with(opts, move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        service.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        assert_eq!(service.metrics().tasks_expired, 0);
    });
}

/// With a one-token burst already spent, a `Reject`-policy submission
/// fails immediately — but the same submission with a [`RetryPolicy`]
/// backs off (floored by the bucket's honest wait hint) and lands once
/// the bucket refills.  The spent attempts surface in the tenant stats
/// and the service report.
#[test]
fn retry_recovers_from_backpressure() {
    with_watchdog("retry_recovers", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(1)
            .refill_rate(200)
            .tenant(TenantConfig::new("t").burst(1).policy(AdmissionPolicy::Reject))
            .build();
        let tenant = service.tenant("t").unwrap();
        tenant.submit(|_| {}).unwrap();
        // The bucket is now empty; a plain retry-less submission rejects.
        assert_eq!(
            tenant.submit(|_| {}).unwrap_err(),
            SubmitError::Backpressure
        );
        // With retries the hint-floored backoff rides out the ~5ms refill.
        let policy = RetryPolicy::new(20)
            .base(Duration::from_millis(1))
            .cap(Duration::from_millis(50));
        tenant
            .submit_with(SubmitOptions::new().retry(policy), |_| {})
            .expect("retries must outlast a 5ms token refill");
        assert!(tenant.stats().retry_attempts >= 1);
        assert!(service.report().retry_attempts >= 1);
        service.drain();
    });
}

/// The service report surfaces §17's health counters: every task panic is
/// counted (not just the one whose payload is kept), and with a backstop
/// comfortably above the task runtime a healthy drain never fires it.
/// (The default 10ms backstop *can* fire legitimately when a drain
/// overlaps slower tasks — e.g. panic unwinding with backtrace capture —
/// which is why the test pins a generous one.)
#[test]
fn report_surfaces_panics_and_gate_backstops() {
    with_watchdog("report_panics_backstops", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(2)
            .drain_backstop(Duration::from_secs(5))
            .tenant(TenantConfig::new("t").burst(8))
            .build();
        let tenant = service.tenant("t").unwrap();
        for _ in 0..2 {
            tenant.submit(|_| panic!("boom")).unwrap();
        }
        service.drain();
        let report = service.report();
        assert_eq!(report.panics_observed, 2, "both panics must be counted");
        assert_eq!(report.gate_backstops, 0, "a 5s backstop never fires here");
        assert!(service.take_panic().is_some(), "first payload is kept");
        assert!(service.take_panic().is_none(), "…and only the first");
    });
}

/// Liveness under teardown: dropping the service while submitter threads
/// are blocked inside bounded-`Block` admission *and* tasks are mid-flight
/// must wake every submitter (with `Draining` or a late admission) and
/// complete the implicit drain — no submitter or worker may wedge.
#[test]
fn drop_with_blocked_submitters_and_midflight_tasks_stays_live() {
    const SUBMITTERS: usize = 4;
    with_watchdog("drop_with_blocked_submitters", WATCHDOG, || {
        let service = ServiceBuilder::new()
            .threads(2)
            .refill_rate(1)
            .tenant(
                TenantConfig::new("t")
                    .burst(1)
                    .policy(AdmissionPolicy::Block(Duration::from_secs(30))),
            )
            .build();
        let tenant = service.tenant("t").unwrap();
        // Mid-flight work: occupies a worker until we release it below.
        let release = Arc::new(AtomicBool::new(false));
        tenant.submit(blocker(&release)).unwrap();

        // These threads exhaust the one-token burst and block in admission
        // (refill is 1/s; the 30s bound means only drain can wake them
        // promptly).
        let returned = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let tenant = tenant.clone();
                let returned = Arc::clone(&returned);
                std::thread::spawn(move || {
                    let result = tenant.submit(|_| {});
                    returned.fetch_add(1, Ordering::SeqCst);
                    result
                })
            })
            .collect();
        // Give the submitters time to actually park in the block loop.
        while tenant.stats().offered < 1 + SUBMITTERS as u64 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(50));

        // Unblock the in-flight task just before teardown so the implicit
        // drain can complete, then drop the service out from under the
        // blocked submitters.
        release.store(true, Ordering::Release);
        drop(service);

        for thread in threads {
            match thread.join().expect("submitter panicked") {
                // Admitted before the gate flipped, or woken by drain.
                Ok(()) | Err(SubmitError::Draining) | Err(SubmitError::Backpressure) => {}
                Err(other) => panic!("unexpected submit error after drop: {other:?}"),
            }
        }
        assert_eq!(returned.load(Ordering::SeqCst), SUBMITTERS);
        // Post-drop submissions on surviving tenant handles fail cleanly.
        assert_eq!(tenant.submit(|_| {}).unwrap_err(), SubmitError::Draining);
    });
}
