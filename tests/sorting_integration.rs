//! End-to-end sorting integration tests: every variant of the paper's
//! evaluation, cross-checked on the same inputs, plus property-based tests
//! over arbitrary vectors.

use proptest::prelude::*;

use teamsteal::{
    fork_join_sort, is_permutation_of, is_sorted, mixed_mode_sort, sequential_quicksort, std_sort,
    Distribution, Scheduler, SortConfig, StealPolicy,
};

fn small_config() -> SortConfig {
    SortConfig {
        cutoff: 256,
        block_size: 512,
        min_blocks_per_thread: 4,
    }
}

#[test]
fn all_variants_agree_on_every_distribution() {
    let threads = 4;
    let det = Scheduler::with_threads(threads);
    let rand = Scheduler::builder()
        .threads(threads)
        .steal_policy(StealPolicy::UniformRandom)
        .build();
    let config = small_config();
    for distribution in Distribution::ALL {
        let input = distribution.generate(120_000, threads, 2026);
        let mut reference = input.clone();
        std_sort(&mut reference);

        let mut seq = input.clone();
        sequential_quicksort(&mut seq, &config);
        assert_eq!(seq, reference, "{distribution:?}: SeqQS disagrees");

        let mut fork = input.clone();
        fork_join_sort(&det, &mut fork, &config);
        assert_eq!(fork, reference, "{distribution:?}: Fork disagrees");

        let mut randfork = input.clone();
        fork_join_sort(&rand, &mut randfork, &config);
        assert_eq!(randfork, reference, "{distribution:?}: Randfork disagrees");

        let mut mm = input.clone();
        mixed_mode_sort(&det, &mut mm, &config);
        assert_eq!(mm, reference, "{distribution:?}: MMPar disagrees");
    }
}

#[test]
fn mixed_mode_sort_uses_teams_on_large_inputs_only() {
    let scheduler = Scheduler::with_threads(4);
    let config = small_config();

    // Large enough input: the data-parallel partitioning step must run.
    let mut big = Distribution::Random.generate(300_000, 4, 1);
    mixed_mode_sort(&scheduler, &mut big, &config);
    assert!(is_sorted(&big));
    let after_big = scheduler.metrics();
    assert!(after_big.teams_formed > 0, "expected team-built partitioning");

    // Small input on a fresh scheduler: pure fork-join, no team overhead.
    let scheduler_small = Scheduler::with_threads(4);
    let mut small = Distribution::Random.generate(4_000, 4, 2);
    mixed_mode_sort(&scheduler_small, &mut small, &config);
    assert!(is_sorted(&small));
    assert_eq!(scheduler_small.metrics().teams_formed, 0);
}

#[test]
fn adversarial_inputs_sort_correctly() {
    let scheduler = Scheduler::with_threads(4);
    let config = small_config();
    let n = 100_000;
    let cases: Vec<(&str, Vec<u32>)> = vec![
        ("already sorted", (0..n as u32).collect()),
        ("reverse sorted", (0..n as u32).rev().collect()),
        ("all equal", vec![42u32; n]),
        ("two values", (0..n as u32).map(|i| i % 2).collect()),
        (
            "organ pipe",
            (0..n as u32).map(|i| i.min(n as u32 - 1 - i)).collect(),
        ),
        ("single", vec![7]),
        ("empty", vec![]),
    ];
    for (name, input) in cases {
        let mut fork = input.clone();
        fork_join_sort(&scheduler, &mut fork, &config);
        assert!(is_sorted(&fork), "fork failed on {name}");
        assert!(is_permutation_of(&input, &fork), "fork corrupted {name}");

        let mut mm = input.clone();
        mixed_mode_sort(&scheduler, &mut mm, &config);
        assert!(is_sorted(&mm), "mmpar failed on {name}");
        assert!(is_permutation_of(&input, &mm), "mmpar corrupted {name}");
    }
}

#[test]
fn paper_thread_counts_all_sort() {
    // The thread counts of the paper's four machines (scaled run): the
    // scheduler must work oversubscribed on whatever host this runs on.
    let config = small_config();
    for threads in [8usize, 16, 32] {
        let scheduler = Scheduler::with_threads(threads);
        let input = Distribution::Staggered.generate(150_000, threads, threads as u64);
        let mut mm = input.clone();
        mixed_mode_sort(&scheduler, &mut mm, &config);
        assert!(is_sorted(&mm), "MMPar failed with {threads} threads");
        assert!(is_permutation_of(&input, &mm));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fork_join_sort_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..4000)) {
        let scheduler = Scheduler::with_threads(3);
        let mut reference = v.clone();
        reference.sort_unstable();
        fork_join_sort(&scheduler, &mut v, &SortConfig { cutoff: 64, ..SortConfig::default() });
        prop_assert_eq!(v, reference);
    }

    #[test]
    fn mixed_mode_sort_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..4000)) {
        let scheduler = Scheduler::with_threads(3);
        let mut reference = v.clone();
        reference.sort_unstable();
        let config = SortConfig { cutoff: 64, block_size: 128, min_blocks_per_thread: 2 };
        mixed_mode_sort(&scheduler, &mut v, &config);
        prop_assert_eq!(v, reference);
    }
}
