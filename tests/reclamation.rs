//! Integration tests for the epoch-based memory reclamation (DESIGN.md §11).
//!
//! The seed runtime retained every consumed injection-queue segment and
//! every retired deque buffer until scheduler drop; these tests pin the
//! bounded-memory guarantee that replaced it: across thousands of root-task
//! lifetimes the reclaimed counters move, the injector's retained-segment
//! count stays bounded (instead of proportional to lifetime root-task
//! count), and the protocol survives concurrent external submitters.  All
//! scheduler-lifetime tests run under the 90 s watchdog
//! (`tests/common/mod.rs`), like the other stress tests.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal::Scheduler;

use common::{with_watchdog, WATCHDOG};

/// Polls `predicate` for up to `budget` while the scheduler's idle workers
/// collect in the background.  Reclamation is asynchronous (it needs idle
/// quiescent points), so assertions about "eventually freed" states give the
/// workers a moment instead of racing them.
fn settle(budget: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if predicate() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn injector_segments_stay_bounded_across_thousands_of_root_tasks() {
    with_watchdog("injector_segments_bounded", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(2);
        let before = scheduler.metrics();
        let executed = Arc::new(AtomicUsize::new(0));
        const SCOPES: usize = 200;
        const PER_SCOPE: usize = 40;
        let mut peak_segments = 0usize;
        for _ in 0..SCOPES {
            let counter = Arc::clone(&executed);
            scheduler.scope(|scope| {
                for _ in 0..PER_SCOPE {
                    let counter = Arc::clone(&counter);
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            peak_segments = peak_segments.max(scheduler.reclamation().injector_segments);
        }
        assert_eq!(executed.load(Ordering::Relaxed), SCOPES * PER_SCOPE);

        // 8000 root tasks crossed ≥ 125 64-slot segments.  The seed runtime
        // retained all of them; with epoch reclamation the live chain stays
        // a small constant.
        assert!(
            peak_segments <= 16,
            "retained-segment peak {peak_segments} looks proportional to traffic"
        );
        // The reclaimed counter must actually have moved, and the idle
        // workers must drain the deferral backlog to a small window.
        assert!(
            settle(Duration::from_secs(20), || {
                let delta = scheduler.metrics().delta_since(&before);
                delta.segments_reclaimed >= 64 && delta.epoch_advances > 0
            }),
            "segments_reclaimed/epoch_advances never reached healthy values: {:?} / {:?}",
            scheduler.metrics().delta_since(&before),
            scheduler.reclamation(),
        );
        assert!(
            settle(Duration::from_secs(20), || scheduler
                .reclamation()
                .deferred_items
                <= 32),
            "deferred backlog never drained: {:?}",
            scheduler.reclamation()
        );
    });
}

#[test]
fn deque_growth_buffers_are_reclaimed() {
    with_watchdog("deque_buffers_reclaimed", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(2);
        let before = scheduler.metrics();
        let executed = Arc::new(AtomicUsize::new(0));
        // Each root bursts far past the deque's minimum capacity (32), so
        // worker deques grow and retire buffers; scopes with escalating
        // burst sizes force several growth generations.
        for round in 0..6usize {
            let burst = 64 << round; // 64 .. 2048
            let counter = Arc::clone(&executed);
            scheduler.scope(|scope| {
                let counter = Arc::clone(&counter);
                scope.spawn(move |ctx| {
                    for _ in 0..burst {
                        let counter = Arc::clone(&counter);
                        ctx.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
        assert!(
            settle(Duration::from_secs(20), || {
                scheduler.metrics().delta_since(&before).buffers_reclaimed > 0
            }),
            "no deque buffer was ever reclaimed: {:?}",
            scheduler.metrics().delta_since(&before)
        );
    });
}

#[test]
fn concurrent_external_submitters_stress_reclamation() {
    with_watchdog("concurrent_submitters_reclamation", WATCHDOG, || {
        // Many submitter threads share the external-pin pool while workers
        // consume and collect; exactness of the counts proves no task (and
        // hence no segment slot) was lost to a reclamation race.
        const SUBMITTERS: usize = 8;
        const SCOPES_PER_SUBMITTER: usize = 40;
        const PER_SCOPE: usize = 24;
        let scheduler = Arc::new(Scheduler::with_threads(4));
        let before = scheduler.metrics();
        let executed = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let scheduler = Arc::clone(&scheduler);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    for _ in 0..SCOPES_PER_SUBMITTER {
                        let counter = Arc::clone(&executed);
                        scheduler.scope(|scope| {
                            for _ in 0..PER_SCOPE {
                                let counter = Arc::clone(&counter);
                                scope.spawn(move |_| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            executed.load(Ordering::Relaxed),
            SUBMITTERS * SCOPES_PER_SUBMITTER * PER_SCOPE
        );
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(
            delta.tasks_injected as usize,
            SUBMITTERS * SCOPES_PER_SUBMITTER * PER_SCOPE,
            "every root task flowed through the injector exactly once"
        );
        assert!(
            settle(Duration::from_secs(20), || {
                scheduler.metrics().delta_since(&before).segments_reclaimed > 0
            }),
            "concurrent run reclaimed nothing: {delta:?}"
        );
        assert!(
            scheduler.reclamation().injector_segments <= 16,
            "retained segments after drain: {:?}",
            scheduler.reclamation()
        );
    });
}

#[test]
fn reclamation_counters_survive_team_workloads() {
    with_watchdog("reclamation_with_teams", WATCHDOG, || {
        // Mixed-mode traffic (teams forming, shrinking, re-forming) must
        // not wedge the epoch: members poll-sleep unpinned, so reclamation
        // keeps advancing while teams exist.
        let scheduler = Scheduler::with_threads(4);
        let before = scheduler.metrics();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits2 = Arc::clone(&hits);
            scheduler.run_team(4, move |ctx| {
                hits2.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
            let hits2 = Arc::clone(&hits);
            scheduler.scope(|scope| {
                for _ in 0..20 {
                    let hits2 = Arc::clone(&hits2);
                    scope.spawn(move |_| {
                        hits2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 4 + 50 * 20);
        assert!(
            settle(Duration::from_secs(20), || {
                scheduler.metrics().delta_since(&before).segments_reclaimed > 0
            }),
            "team-heavy run reclaimed nothing: {:?}",
            scheduler.metrics().delta_since(&before)
        );
    });
}
