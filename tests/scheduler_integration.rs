//! Cross-crate integration tests of the team-building scheduler: mixed
//! workloads, team reuse, shrink/grow sequences, stress with many small
//! teams, oversubscription and non power-of-two machines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, StealPolicy};

mod common;
use common::{with_watchdog, WATCHDOG};

fn counter() -> Arc<AtomicUsize> {
    Arc::new(AtomicUsize::new(0))
}

#[test]
fn many_small_teams_in_sequence() {
    // Team reuse: the same coordinator keeps publishing same-size tasks; the
    // paper's protocol requires no further coordination after the first
    // formation.  All tasks must run on every member exactly once.
    with_watchdog("many_small_teams_in_sequence", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let runs = counter();
        let rounds = 50;
        {
            let runs = Arc::clone(&runs);
            scheduler.scope(|scope| {
                for _ in 0..rounds {
                    let runs = Arc::clone(&runs);
                    scope.spawn_team(2, move |ctx| {
                        runs.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
            });
        }
        assert_eq!(runs.load(Ordering::Relaxed), rounds * 2);
    });
}

#[test]
fn alternating_team_sizes_grow_and_shrink() {
    // Alternating 2- and 4-thread tasks force the coordinator to grow and
    // shrink/rebuild teams repeatedly (Section 3.1).  This is the scenario
    // of the ROADMAP liveness flake, so it runs under the watchdog: a lost
    // wakeup or steal ping-pong is a fast failure with a state dump, not a
    // 40-minute silent hang.
    with_watchdog("alternating_team_sizes_grow_and_shrink", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let small_runs = counter();
        let large_runs = counter();
        {
            let small_runs = Arc::clone(&small_runs);
            let large_runs = Arc::clone(&large_runs);
            scheduler.scope(|scope| {
                for i in 0..30 {
                    if i % 2 == 0 {
                        let c = Arc::clone(&small_runs);
                        scope.spawn_team(2, move |ctx| {
                            c.fetch_add(1, Ordering::Relaxed);
                            ctx.barrier();
                        });
                    } else {
                        let c = Arc::clone(&large_runs);
                        scope.spawn_team(4, move |ctx| {
                            c.fetch_add(1, Ordering::Relaxed);
                            ctx.barrier();
                        });
                    }
                }
            });
        }
        assert_eq!(small_runs.load(Ordering::Relaxed), 15 * 2);
        assert_eq!(large_runs.load(Ordering::Relaxed), 15 * 4);
    });
}

#[test]
fn mixed_sequential_and_team_tasks() {
    with_watchdog("mixed_sequential_and_team_tasks", WATCHDOG, || {
        // The motivating scenario: data-parallel tasks and ordinary tasks share
        // one scheduler; everything completes and nothing runs twice.
        let scheduler = Scheduler::with_threads(8);
        let solo = counter();
        let team2 = counter();
        let team8 = counter();
        {
            let solo = Arc::clone(&solo);
            let team2 = Arc::clone(&team2);
            let team8 = Arc::clone(&team8);
            scheduler.scope(|scope| {
                for i in 0..120 {
                    match i % 6 {
                        0 => {
                            let c = Arc::clone(&team2);
                            scope.spawn_team(2, move |ctx| {
                                c.fetch_add(1, Ordering::Relaxed);
                                ctx.barrier();
                            });
                        }
                        1 => {
                            let c = Arc::clone(&team8);
                            scope.spawn_team(8, move |ctx| {
                                c.fetch_add(1, Ordering::Relaxed);
                                ctx.barrier();
                            });
                        }
                        _ => {
                            let c = Arc::clone(&solo);
                            scope.spawn(move |_| {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    }
                }
            });
        }
        assert_eq!(solo.load(Ordering::Relaxed), 80);
        assert_eq!(team2.load(Ordering::Relaxed), 20 * 2);
        assert_eq!(team8.load(Ordering::Relaxed), 20 * 8);
        let m = scheduler.metrics();
        assert!(m.teams_formed > 0);
    });
}

#[test]
fn team_members_get_consecutive_local_ids_and_aligned_bases() {
    // Lemma / Section 3.1: teams consist of consecutively numbered threads
    // k*r ..= (k+1)*r - 1 and local ids are global id minus the team base.
    let scheduler = Scheduler::with_threads(8);
    // (worker id, team base, local id, team size) per member.
    type Observation = (usize, usize, usize, usize);
    let observations: Arc<std::sync::Mutex<Vec<Observation>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let observations = Arc::clone(&observations);
        scheduler.scope(|scope| {
            for _ in 0..10 {
                let obs = Arc::clone(&observations);
                scope.spawn_team(4, move |ctx| {
                    obs.lock().unwrap().push((
                        ctx.team_base(),
                        ctx.team_size(),
                        ctx.local_id(),
                        ctx.global_thread_id(),
                    ));
                    ctx.barrier();
                });
            }
        });
    }
    let obs = observations.lock().unwrap();
    assert_eq!(obs.len(), 40);
    for &(base, size, local, global) in obs.iter() {
        assert_eq!(size, 4);
        assert_eq!(base % 4, 0, "teams are aligned blocks");
        assert_eq!(global, base + local, "local id = global id - team base");
        assert!(local < size);
    }
}

#[test]
fn tasks_spawned_from_team_members_complete() {
    // Team members may spawn ordinary tasks; those land in the member's own
    // queue and must still be executed before the scope returns.
    let scheduler = Scheduler::with_threads(4);
    let follow_up = counter();
    {
        let follow_up = Arc::clone(&follow_up);
        scheduler.scope(|scope| {
            let follow_up = Arc::clone(&follow_up);
            scope.spawn_team(4, move |ctx| {
                ctx.barrier();
                let c = Arc::clone(&follow_up);
                ctx.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
    }
    assert_eq!(follow_up.load(Ordering::Relaxed), 4, "one follow-up per member");
}

#[test]
fn nested_team_spawns_from_local_id_zero() {
    // The mixed-mode Quicksort pattern: a team task whose local id 0 spawns
    // further (smaller) team tasks.
    let scheduler = Scheduler::with_threads(8);
    let inner = counter();
    {
        let inner = Arc::clone(&inner);
        scheduler.scope(|scope| {
            let inner = Arc::clone(&inner);
            scope.spawn_team(8, move |ctx| {
                ctx.barrier();
                if ctx.local_id() == 0 {
                    for _ in 0..2 {
                        let c = Arc::clone(&inner);
                        ctx.spawn_team(4, move |ctx| {
                            c.fetch_add(1, Ordering::Relaxed);
                            ctx.barrier();
                        });
                    }
                }
            });
        });
    }
    assert_eq!(inner.load(Ordering::Relaxed), 2 * 4);
}

#[test]
fn oversubscribed_scheduler_still_completes() {
    with_watchdog("oversubscribed_scheduler_still_completes", WATCHDOG, || {
        // 16 workers on (almost certainly) fewer hardware threads: teams must
        // still form thanks to the yielding backoff.
        let scheduler = Scheduler::with_threads(16);
        let runs = counter();
        {
            let runs = Arc::clone(&runs);
            scheduler.scope(|scope| {
                for _ in 0..5 {
                    let c = Arc::clone(&runs);
                    scope.spawn_team(16, move |ctx| {
                        c.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
                for _ in 0..50 {
                    let c = Arc::clone(&runs);
                    scope.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(runs.load(Ordering::Relaxed), 5 * 16 + 50);
    });
}

#[test]
fn non_power_of_two_machine_with_rounded_up_teams() {
    // Refinements 2 + 3: on a 6-worker machine a request for 3 threads maps
    // onto a hierarchy group; requests for 5 are rounded up to the whole
    // machine and the surplus members are identifiable.
    let scheduler = Scheduler::with_threads(6);
    let participants = counter();
    let surplus = counter();
    {
        let participants = Arc::clone(&participants);
        let surplus = Arc::clone(&surplus);
        scheduler.scope(|scope| {
            for _ in 0..10 {
                let p = Arc::clone(&participants);
                let s = Arc::clone(&surplus);
                scope.spawn_team(3, move |ctx| {
                    assert!(ctx.team_size() >= ctx.requested_threads());
                    if ctx.is_surplus() {
                        s.fetch_add(1, Ordering::Relaxed);
                    } else {
                        p.fetch_add(1, Ordering::Relaxed);
                    }
                    ctx.barrier();
                });
            }
        });
    }
    // Every execution has exactly 3 non-surplus members.
    assert_eq!(participants.load(Ordering::Relaxed), 10 * 3);
}

#[test]
fn randomized_within_level_policy_supports_teams() {
    // Refinement 4 keeps the hierarchy, so team building must still work.
    let scheduler = Scheduler::builder()
        .threads(4)
        .steal_policy(StealPolicy::RandomizedWithinLevel)
        .build();
    let runs = counter();
    {
        let runs = Arc::clone(&runs);
        scheduler.scope(|scope| {
            for _ in 0..20 {
                let c = Arc::clone(&runs);
                scope.spawn_team(4, move |ctx| {
                    c.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
            }
        });
    }
    assert_eq!(runs.load(Ordering::Relaxed), 20 * 4);
}

#[test]
fn deep_sequential_recursion_spawning() {
    // A chain of tasks each spawning the next; exercises repeated queue
    // push/pop and termination detection with a long dependency chain.
    let scheduler = Scheduler::with_threads(2);
    let hits = counter();
    fn chain(ctx: &teamsteal::TaskContext<'_>, depth: usize, hits: Arc<AtomicUsize>) {
        hits.fetch_add(1, Ordering::Relaxed);
        if depth > 0 {
            ctx.spawn(move |ctx| chain(ctx, depth - 1, hits));
        }
    }
    {
        let hits = Arc::clone(&hits);
        scheduler.scope(|scope| {
            scope.spawn(move |ctx| chain(ctx, 999, hits));
        });
    }
    assert_eq!(hits.load(Ordering::Relaxed), 1000);
}

#[test]
fn scope_results_are_returned_and_scheduler_is_reusable() {
    let scheduler = Scheduler::with_threads(3);
    for round in 0..10 {
        let c = counter();
        let out = {
            let c = Arc::clone(&c);
            scheduler.scope(|scope| {
                for _ in 0..round {
                    let c = Arc::clone(&c);
                    scope.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
                round * 10
            })
        };
        assert_eq!(out, round * 10);
        assert_eq!(c.load(Ordering::Relaxed), round);
    }
}
