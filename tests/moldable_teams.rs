//! Stress tests for the moldable-team machinery (DESIGN.md §15): adaptive
//! `r_min..=r_max` requirements mixed with fixed-`r` spawns, warm team
//! reuse across consecutive tasks, elastic shrink under backlog, and the
//! shutdown path draining a parked warm team.  Everything runs under the
//! shared watchdog so a lost wakeup in the pool shows up as a loud abort
//! with a stall report instead of a silent hang.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use teamsteal::{Scheduler, StealPolicy};

mod common;
use common::{with_watchdog, WATCHDOG};

/// Moldable and fixed-requirement team tasks interleaved in one scope,
/// with sequential riders mixed in.  Every moldable task must run on an
/// effective requirement inside its declared range, every fixed task on
/// exactly its requirement, and nothing may be lost.
#[test]
fn moldable_and_fixed_teams_mix() {
    with_watchdog("moldable_and_fixed_teams_mix", WATCHDOG, || {
        let scheduler = Scheduler::with_threads(4);
        let moldable_runs = Arc::new(AtomicUsize::new(0));
        let fixed_hits = Arc::new(AtomicUsize::new(0));
        let riders = Arc::new(AtomicUsize::new(0));
        const ROUNDS: usize = 12;
        scheduler.scope(|scope| {
            for i in 0..ROUNDS {
                let moldable_runs = Arc::clone(&moldable_runs);
                scope.spawn_team_moldable(2..=4, move |ctx| {
                    let r = ctx.requested_threads();
                    assert!(
                        (2..=4).contains(&r),
                        "effective requirement {r} escaped the declared 2..=4 range"
                    );
                    assert!(ctx.team_size() >= r);
                    if ctx.local_id() == 0 {
                        moldable_runs.fetch_add(1, Ordering::Relaxed);
                    }
                    ctx.barrier();
                });
                let fixed_hits = Arc::clone(&fixed_hits);
                let r = if i % 2 == 0 { 2 } else { 4 };
                scope.spawn_team(r, move |ctx| {
                    assert_eq!(ctx.requested_threads(), r);
                    fixed_hits.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
                let riders = Arc::clone(&riders);
                scope.spawn(move |_| {
                    riders.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(moldable_runs.load(Ordering::Relaxed), ROUNDS);
        // Half the fixed teams ran on r = 2, half on r = 4.
        assert_eq!(fixed_hits.load(Ordering::Relaxed), ROUNDS / 2 * (2 + 4));
        assert_eq!(riders.load(Ordering::Relaxed), ROUNDS);
    });
}

/// A streak of identical full-machine teams must classify every
/// publication exactly once — `teams_built + team_reuses` equals the
/// number of team tasks — and the scheduler must shut down cleanly while
/// the last team is still parked warm (the drop races the keep-alive
/// window, so both the warm and the expired arm get exercised over CI
/// runs).
#[test]
fn warm_streak_accounts_every_publication_and_drains_on_drop() {
    with_watchdog("warm_streak_accounts_every_publication", WATCHDOG, || {
        const ROUNDS: usize = 24;
        let scheduler = Scheduler::with_threads(2);
        let before = scheduler.metrics();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..ROUNDS {
            let hits = Arc::clone(&hits);
            scheduler.run_team(2, move |ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2 * ROUNDS);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(
            delta.teams_built + delta.team_reuses,
            ROUNDS as u64,
            "every team publication must be counted as exactly one build or reuse"
        );
        // Immediately drop with the team likely still in its keep-alive
        // window: shutdown must disband the parked members, not hang.
        drop(scheduler);
    });
}

/// A deep injected backlog must trigger elastic shrink: with the
/// threshold forced down to 2, a burst of team tasks has to produce at
/// least one barrier-point disband, and still execute every task.
#[test]
fn deep_backlog_triggers_elastic_shrink() {
    with_watchdog("deep_backlog_triggers_elastic_shrink", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .elastic_backlog_threshold(2)
            .seed(0xE1A5)
            .build();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let before = scheduler.metrics();
            let hits = Arc::new(AtomicUsize::new(0));
            scheduler.scope(|scope| {
                // All 16 nodes are injected before any team finishes, so a
                // completing coordinator sees backlog ≥ 2 and must shrink.
                for _ in 0..16 {
                    let hits = Arc::clone(&hits);
                    scope.spawn_team(2, move |ctx| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 2 * 16);
            if scheduler.metrics().delta_since(&before).team_shrinks > 0 {
                break;
            }
            // Single-CPU scheduling can drain the injector before any team
            // completes; retry under the watchdog's budget.
            assert!(rounds < 100, "deep backlog never produced an elastic shrink");
        }
    });
}

/// Moldable spawns on the `UniformRandom` (Randfork) baseline must
/// collapse to `r_min`: that policy has no hierarchy to recruit teams
/// from, so `1..=k` ranges still work and run as sequential tasks when
/// `r_min` is 1.
#[test]
fn moldable_collapses_to_r_min_under_uniform_random() {
    with_watchdog("moldable_collapses_under_uniform_random", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::UniformRandom)
            .seed(0x5EED)
            .build();
        let runs = Arc::new(AtomicUsize::new(0));
        scheduler.scope(|scope| {
            for _ in 0..32 {
                let runs = Arc::clone(&runs);
                scope.spawn_team_moldable(1..=4, move |ctx| {
                    assert_eq!(
                        ctx.requested_threads(),
                        1,
                        "UniformRandom must pick r_min — it cannot build teams"
                    );
                    runs.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 32);
        assert_eq!(scheduler.metrics().teams_formed, 0);
    });
}

/// Disabling warm reuse (`warm_keepalive = 0`) restores the pre-moldable
/// disband-at-once behaviour: a same-`r` streak still runs correctly but
/// never reports a reuse.
#[test]
fn zero_keepalive_disables_the_warm_pool() {
    with_watchdog("zero_keepalive_disables_the_warm_pool", WATCHDOG, || {
        let scheduler = Scheduler::builder()
            .threads(2)
            .warm_keepalive(Duration::ZERO)
            .build();
        let before = scheduler.metrics();
        let hits = Arc::new(AtomicUsize::new(0));
        const ROUNDS: usize = 12;
        for _ in 0..ROUNDS {
            let hits = Arc::clone(&hits);
            scheduler.run_team(2, move |ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2 * ROUNDS);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.team_reuses, 0, "a disabled pool must never report reuse");
        assert_eq!(delta.teams_built, ROUNDS as u64);
    });
}
