//! Integration tests for the sharded injection queue (DESIGN.md §13).
//!
//! PR 6 split the single global injector into one shard per hierarchy
//! domain: external submitters push to an affinity-keyed shard, workers pop
//! local-first and sweep remote shards in distance order.  These tests pin
//! the properties that must survive the split: every externally submitted
//! task executes exactly once under heavy concurrent submission (no task is
//! lost between shards), the per-shard retained-segment counts stay bounded
//! (reclamation still works when consumption is spread over many tails),
//! every pop is classified as either local or remote, and team workloads
//! keep running while the injector is under multi-producer fire.  All
//! scheduler-lifetime tests run under the 90 s watchdog
//! (`tests/common/mod.rs`).

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal::Scheduler;

use common::{with_watchdog, WATCHDOG};

/// Polls `predicate` for up to `budget`; reclamation is asynchronous, so
/// "eventually bounded" assertions give the idle workers a moment instead
/// of racing them.
fn settle(budget: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if predicate() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_submitters_stress_sharded_injector() {
    with_watchdog("sharded_injector_stress", WATCHDOG, || {
        // 16 workers with domain width 4 → a genuinely sharded injector
        // (multiple domains), unlike the default-width small schedulers in
        // the other stress tests.  8 scope submitters hammer the shards
        // while 2 more threads keep forming teams, so the sweep path, the
        // hierarchical wake path, and team building all run concurrently.
        const SCOPE_SUBMITTERS: usize = 8;
        const TEAM_SUBMITTERS: usize = 2;
        const SCOPES_PER_SUBMITTER: usize = 30;
        const PER_SCOPE: usize = 24;
        const TEAMS_PER_SUBMITTER: usize = 20;
        const TEAM_SIZE: usize = 4;

        let scheduler = Arc::new(
            Scheduler::builder()
                .threads(16)
                .domain_width(4)
                .build(),
        );
        let shards = scheduler.injector_shard_segments().len();
        assert!(
            shards >= 2,
            "test premise: this configuration must produce a sharded injector, got {shards}"
        );
        let before = scheduler.metrics();
        let executed = Arc::new(AtomicUsize::new(0));
        let team_hits = Arc::new(AtomicUsize::new(0));

        let mut threads = Vec::new();
        for _ in 0..SCOPE_SUBMITTERS {
            let scheduler = Arc::clone(&scheduler);
            let executed = Arc::clone(&executed);
            threads.push(std::thread::spawn(move || {
                for _ in 0..SCOPES_PER_SUBMITTER {
                    let counter = Arc::clone(&executed);
                    scheduler.scope(|scope| {
                        for _ in 0..PER_SCOPE {
                            let counter = Arc::clone(&counter);
                            scope.spawn(move |_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            }));
        }
        for _ in 0..TEAM_SUBMITTERS {
            let scheduler = Arc::clone(&scheduler);
            let team_hits = Arc::clone(&team_hits);
            threads.push(std::thread::spawn(move || {
                for _ in 0..TEAMS_PER_SUBMITTER {
                    let hits = Arc::clone(&team_hits);
                    scheduler.run_team(TEAM_SIZE, move |ctx| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }

        // Exactly-once execution across every shard.
        let scope_tasks = SCOPE_SUBMITTERS * SCOPES_PER_SUBMITTER * PER_SCOPE;
        assert_eq!(executed.load(Ordering::Relaxed), scope_tasks);
        assert_eq!(
            team_hits.load(Ordering::Relaxed),
            TEAM_SUBMITTERS * TEAMS_PER_SUBMITTER * TEAM_SIZE
        );
        let delta = scheduler.metrics().delta_since(&before);
        let injected = scope_tasks + TEAM_SUBMITTERS * TEAMS_PER_SUBMITTER;
        assert_eq!(
            delta.tasks_injected as usize, injected,
            "every root task flowed through the sharded injector exactly once"
        );
        // Every injector pop is classified local-or-remote, never both and
        // never neither.
        assert_eq!(
            delta.injector_local_pops + delta.injector_remote_pops,
            delta.tasks_injected,
            "pop classification must partition the injected tasks: {delta:?}"
        );

        // Bounded retention per shard, not just in aggregate: a shard whose
        // consumed segments never get reclaimed would hide behind a healthy
        // sum if another shard stayed tiny.
        assert!(
            settle(Duration::from_secs(20), || scheduler
                .injector_shard_segments()
                .iter()
                .all(|&segs| segs <= 16)),
            "a shard retained segments proportional to traffic: {:?}",
            scheduler.injector_shard_segments()
        );
        let per_shard = scheduler.injector_shard_segments();
        assert_eq!(
            per_shard.iter().sum::<usize>(),
            scheduler.reclamation().injector_segments,
            "per-shard segment counts must add up to the aggregate gauge"
        );
        assert!(
            settle(Duration::from_secs(20), || {
                scheduler.metrics().delta_since(&before).segments_reclaimed > 0
            }),
            "multi-producer run reclaimed nothing: {:?}",
            scheduler.metrics().delta_since(&before)
        );
    });
}

#[test]
fn single_shard_width_keeps_exactly_once_semantics() {
    with_watchdog("single_shard_width", WATCHDOG, || {
        // domain_width ≥ p collapses the injector back to one shard (the
        // pre-sharding layout); concurrent submission must behave
        // identically and every pop must count as local.
        const SUBMITTERS: usize = 8;
        const SCOPES_PER_SUBMITTER: usize = 20;
        const PER_SCOPE: usize = 16;
        let scheduler = Arc::new(
            Scheduler::builder()
                .threads(4)
                .domain_width(64)
                .build(),
        );
        assert_eq!(scheduler.injector_shard_segments().len(), 1);
        let before = scheduler.metrics();
        let executed = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let scheduler = Arc::clone(&scheduler);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    for _ in 0..SCOPES_PER_SUBMITTER {
                        let counter = Arc::clone(&executed);
                        scheduler.scope(|scope| {
                            for _ in 0..PER_SCOPE {
                                let counter = Arc::clone(&counter);
                                scope.spawn(move |_| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = SUBMITTERS * SCOPES_PER_SUBMITTER * PER_SCOPE;
        assert_eq!(executed.load(Ordering::Relaxed), total);
        let delta = scheduler.metrics().delta_since(&before);
        assert_eq!(delta.tasks_injected as usize, total);
        // With one shard every worker's sweep starts (and ends) at shard 0,
        // so no pop can be remote.
        assert_eq!(delta.injector_remote_pops, 0, "{delta:?}");
        assert_eq!(delta.injector_local_pops, delta.tasks_injected);
    });
}
