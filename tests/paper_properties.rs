//! Tests tied directly to claims the paper makes about the algorithm
//! (Sections 3.1–3.3): execution-exactly-once, the single-CAS join cost,
//! team reuse, the degenerate case, and completeness under conflicting
//! coordinators.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::{Scheduler, StealPolicy};

/// Lemma 4: "Each task is only executed once by each of the threads in a
/// team."  Every (task, member) pair must be hit exactly once even when many
/// team tasks are in flight.
#[test]
fn lemma4_each_task_executed_once_per_member() {
    let scheduler = Scheduler::with_threads(4);
    let tasks = 40usize;
    let team = 4usize;
    // executions[task][member]
    let executions: Arc<Vec<Vec<AtomicUsize>>> = Arc::new(
        (0..tasks)
            .map(|_| (0..team).map(|_| AtomicUsize::new(0)).collect())
            .collect(),
    );
    {
        let executions = Arc::clone(&executions);
        scheduler.scope(|scope| {
            for t in 0..tasks {
                let executions = Arc::clone(&executions);
                scope.spawn_team(team, move |ctx| {
                    executions[t][ctx.local_id()].fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
            }
        });
    }
    for (t, members) in executions.iter().enumerate() {
        for (m, count) in members.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::Relaxed),
                1,
                "task {t} executed {} times by member {m}",
                count.load(Ordering::Relaxed)
            );
        }
    }
}

/// Section 3: "The overhead for forming a new team is a single extra atomic
/// compare-and-swap instruction per thread joining a team."  The
/// registration counter counts exactly those CAS operations; it must stay
/// bounded by (team size − 1) per formed team plus the re-registrations
/// caused by revocations — in particular it must be *zero* when no team
/// tasks exist and at least (team − 1) when one team forms.
#[test]
fn single_cas_join_is_visible_in_metrics() {
    let scheduler = Scheduler::with_threads(4);
    scheduler.run_team(4, |ctx| {
        ctx.barrier();
    });
    let m = scheduler.metrics();
    assert!(m.teams_formed >= 1);
    assert!(
        m.registrations >= 3,
        "a 4-thread team needs at least 3 joining threads, saw {}",
        m.registrations
    );
}

/// Section 3.1 / degenerate case: with only r = 1 tasks there are no
/// registrations, no teams and no team executions — the scheduler *is* a
/// classical work-stealer.
#[test]
fn degenerate_case_has_zero_team_overhead() {
    for policy in [StealPolicy::Deterministic, StealPolicy::RandomizedWithinLevel] {
        let scheduler = Scheduler::builder().threads(4).steal_policy(policy).build();
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let hits = Arc::clone(&hits);
            scheduler.scope(|scope| {
                for _ in 0..500 {
                    let hits = Arc::clone(&hits);
                    scope.spawn(move |ctx| {
                        let hits2 = Arc::clone(&hits);
                        ctx.spawn(move |_| {
                            hits2.fetch_add(1, Ordering::Relaxed);
                        });
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        let m = scheduler.metrics();
        assert_eq!(m.registrations, 0, "policy {policy:?}");
        assert_eq!(m.teams_formed, 0, "policy {policy:?}");
        assert_eq!(m.team_tasks_executed, 0, "policy {policy:?}");
    }
}

/// Section 3: "Once formed, teams can stay to process further tasks requiring
/// the same (or smaller) number of threads; this requires no further
/// coordination."  A burst of same-size team tasks submitted together should
/// form far fewer teams than it executes tasks.
#[test]
fn team_reuse_forms_fewer_teams_than_tasks() {
    let scheduler = Scheduler::with_threads(2);
    let tasks = 200usize;
    let runs = Arc::new(AtomicUsize::new(0));
    {
        let runs = Arc::clone(&runs);
        scheduler.scope(|scope| {
            // One generator task spawns all team tasks from a single worker,
            // so they all end up in one coordinator's queue back to back.
            let runs = Arc::clone(&runs);
            scope.spawn(move |ctx| {
                for _ in 0..tasks {
                    let runs = Arc::clone(&runs);
                    ctx.spawn_team(2, move |tctx| {
                        runs.fetch_add(1, Ordering::Relaxed);
                        tctx.barrier();
                    });
                }
            });
        });
    }
    assert_eq!(runs.load(Ordering::Relaxed), tasks * 2);
    let m = scheduler.metrics();
    assert!(m.teams_formed >= 1);
    assert!(
        (m.teams_formed as usize) < tasks / 2,
        "expected team reuse: {} teams formed for {} same-size tasks",
        m.teams_formed,
        tasks
    );
}

/// Lemma 3 (conflict resolution): several workers simultaneously holding
/// same-size team tasks must all make progress — the conflicts are resolved
/// deterministically instead of deadlocking.
#[test]
fn competing_coordinators_all_make_progress() {
    let scheduler = Scheduler::with_threads(4);
    let runs = Arc::new(AtomicUsize::new(0));
    let generators = 4usize;
    let per_generator = 10usize;
    {
        let runs = Arc::clone(&runs);
        scheduler.scope(|scope| {
            // Several generator tasks (landing on different workers) each
            // spawn team tasks, so multiple coordinators compete for the same
            // partners at the same time.
            for g in 0..generators {
                let runs = Arc::clone(&runs);
                scope.spawn(move |ctx| {
                    for _ in 0..per_generator {
                        let runs = Arc::clone(&runs);
                        let size = if g % 2 == 0 { 2 } else { 4 };
                        ctx.spawn_team(size, move |tctx| {
                            runs.fetch_add(1, Ordering::Relaxed);
                            tctx.barrier();
                        });
                    }
                });
            }
        });
    }
    // 2 generators spawn 10 tasks of size 2, 2 generators spawn 10 of size 4.
    let expected = 2 * per_generator * 2 + 2 * per_generator * 4;
    assert_eq!(runs.load(Ordering::Relaxed), expected);
}

/// Lemma 1 (completeness): a task requiring the whole machine is eventually
/// executed even while a steady stream of small tasks keeps every worker
/// busy.
#[test]
fn large_team_task_not_starved_by_small_tasks() {
    let scheduler = Scheduler::with_threads(4);
    let big_ran = Arc::new(AtomicUsize::new(0));
    let small_ran = Arc::new(AtomicUsize::new(0));
    {
        let big_ran = Arc::clone(&big_ran);
        let small_ran = Arc::clone(&small_ran);
        scheduler.scope(|scope| {
            // Lots of small work first …
            for _ in 0..400 {
                let small_ran = Arc::clone(&small_ran);
                scope.spawn(move |_| {
                    small_ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // … and one task that needs every worker.
            let big_ran2 = Arc::clone(&big_ran);
            scope.spawn_team(4, move |ctx| {
                big_ran2.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
            });
            // … followed by more small work spawned afterwards.
            for _ in 0..400 {
                let small_ran = Arc::clone(&small_ran);
                scope.spawn(move |_| {
                    small_ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    assert_eq!(big_ran.load(Ordering::Relaxed), 4);
    assert_eq!(small_ran.load(Ordering::Relaxed), 800);
}
