//! Cross-crate integration tests: the application kernels (`teamsteal-apps`),
//! the Quicksort workloads (`teamsteal-sort`) and the scheduler
//! (`teamsteal-core`) running together on shared worker pools.
//!
//! The paper's argument for scheduling data-parallel tasks *inside* the
//! work-stealer (rather than with dedicated helper threads) is that different
//! parallel computations can then share one pool and balance against each
//! other.  These tests exercise exactly that: several kernels on one
//! scheduler, kernels running concurrently with task-parallel work, and the
//! same kernel across scheduler configurations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teamsteal::apps::bfs::{bfs_mixed_with, bfs_sequential, CsrGraph};
use teamsteal::apps::histogram::{histogram_mixed_with, histogram_sequential};
use teamsteal::apps::matmul::{matmul_mixed_with, matmul_sequential, Matrix};
use teamsteal::apps::merge::{merge_sort_mixed_with, MergeSortConfig};
use teamsteal::apps::reduce::{parallel_sum, team_reduce_with};
use teamsteal::apps::scan::scan_with;
use teamsteal::apps::stencil::{jacobi_mixed, jacobi_sequential, StencilConfig};
use teamsteal::{is_permutation_of, is_sorted, mixed_mode_sort, Distribution, Scheduler, SortConfig, StealPolicy};

/// Every kernel, one after another, on one shared scheduler.  Checks results
/// and that team machinery was actually exercised.
#[test]
fn kernel_suite_shares_one_scheduler() {
    let scheduler = Scheduler::with_threads(4);
    // Sizes are modest: the suite's point is cross-kernel composition on one
    // pool, not throughput, and the CI host is a single oversubscribed CPU.
    let n = 60_000usize;

    let ints: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
    assert_eq!(
        team_reduce_with(&scheduler, &ints, 0u64, |a, b| a + b, 1024),
        ints.iter().sum::<u64>()
    );

    let mut prefix = vec![0u64; n];
    scan_with(&scheduler, &ints, &mut prefix, 0, |a, b| a + b, true, 1024);
    assert_eq!(*prefix.last().unwrap(), ints.iter().sum::<u64>());

    let keys = Distribution::Buckets.generate(n, 4, 3);
    assert_eq!(
        histogram_mixed_with(&scheduler, &keys, 48, 1024),
        histogram_sequential(&keys, 48)
    );

    let mut to_sort = Distribution::Staggered.generate(n, 4, 5);
    let original = to_sort.clone();
    merge_sort_mixed_with(
        &scheduler,
        &mut to_sort,
        &MergeSortConfig {
            leaf_size: 1024,
            min_elements_per_member: 4096,
        },
    );
    assert!(is_sorted(&to_sort));
    assert!(is_permutation_of(&original, &to_sort));

    let grid: Vec<f64> = (0..n).map(|i| (i % 31) as f64).collect();
    let stencil_cfg = StencilConfig {
        sweeps: 8,
        alpha: 0.25,
        min_cells_per_member: 1024,
    };
    let heat = jacobi_mixed(&scheduler, &grid, &stencil_cfg);
    let heat_ref = jacobi_sequential(&grid, &stencil_cfg);
    assert!(heat
        .iter()
        .zip(&heat_ref)
        .all(|(a, b)| (a - b).abs() < 1e-12));

    let metrics = scheduler.metrics();
    assert!(metrics.teams_formed > 0, "the suite must have formed teams");
    assert!(metrics.team_tasks_executed > 0);
    assert!(metrics.tasks_executed > 0, "merge-sort leaves are r = 1 tasks");
}

/// The mixed-mode Quicksort and a team reduction submitted to the same
/// scheduler from two OS threads at the same time: the pool must serve both
/// without deadlocking and both must produce correct results.
#[test]
fn quicksort_and_reduction_share_the_pool_concurrently() {
    let scheduler = Arc::new(Scheduler::with_threads(4));
    let sort_input = Distribution::Random.generate(60_000, 4, 9);
    // The reduction is sized so its team requirement (r = 2) is smaller than
    // the machine: the team can form while the other workers keep sorting,
    // which is the co-existence behaviour this test is about (a full-machine
    // team would simply serialize after the sort drains).
    let ints: Vec<u64> = (0..60_000u64).map(|i| i % 1009).collect();
    let expected_sum: u64 = ints.iter().sum();

    let s1 = Arc::clone(&scheduler);
    let original = sort_input.clone();
    let sorter = std::thread::spawn(move || {
        let mut data = original;
        mixed_mode_sort(
            &s1,
            &mut data,
            &SortConfig {
                cutoff: 256,
                block_size: 512,
                min_blocks_per_thread: 4,
            },
        );
        data
    });
    let s2 = Arc::clone(&scheduler);
    let reducer = std::thread::spawn(move || {
        let mut sums = Vec::new();
        for _ in 0..3 {
            sums.push(team_reduce_with(&s2, &ints, 0u64, |a, b| a + b, 16_384));
        }
        sums
    });

    let sorted = sorter.join().expect("sorter panicked");
    assert!(is_sorted(&sorted));
    assert!(is_permutation_of(&sort_input, &sorted));
    for sum in reducer.join().expect("reducer panicked") {
        assert_eq!(sum, expected_sum);
    }
}

/// Team tasks of different sizes interleaved with sequential tasks in one
/// scope: tasks requiring fewer threads must not be starved by large ones and
/// everything must complete.
#[test]
fn interleaved_team_sizes_and_sequential_tasks_complete() {
    let scheduler = Scheduler::with_threads(4);
    let team_hits = Arc::new(AtomicUsize::new(0));
    let seq_hits = Arc::new(AtomicUsize::new(0));

    scheduler.scope(|scope| {
        for round in 0..12 {
            let team = match round % 3 {
                0 => 2,
                1 => 4,
                _ => 1,
            };
            if team == 1 {
                let seq_hits = Arc::clone(&seq_hits);
                scope.spawn(move |ctx| {
                    // Sequential tasks spawn more sequential work.
                    for _ in 0..4 {
                        let seq_hits = Arc::clone(&seq_hits);
                        ctx.spawn(move |_| {
                            seq_hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    seq_hits.fetch_add(1, Ordering::Relaxed);
                });
            } else {
                let team_hits = Arc::clone(&team_hits);
                scope.spawn_team(team, move |ctx| {
                    assert!(ctx.local_id() < ctx.team_size());
                    team_hits.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
            }
        }
    });

    // 4 rounds of r=1 tasks -> 4 * (1 + 4) executions; 4 rounds of r=2 teams
    // -> 8 member executions; 4 rounds of r=4 teams -> 16 member executions.
    assert_eq!(seq_hits.load(Ordering::Relaxed), 20);
    assert_eq!(team_hits.load(Ordering::Relaxed), 8 + 16);
}

/// The same kernels must work under the randomized-within-level policy
/// (Refinement 4) and on a machine hierarchy that is not a power of two
/// (Refinement 3).
#[test]
fn kernels_respect_refinements_3_and_4() {
    for (threads, policy) in [
        (3usize, StealPolicy::Deterministic),
        (4usize, StealPolicy::RandomizedWithinLevel),
        (6usize, StealPolicy::RandomizedWithinLevel),
    ] {
        let scheduler = Scheduler::builder()
            .threads(threads)
            .steal_policy(policy)
            .build();
        let ints: Vec<u64> = (0..90_000u64).map(|i| i % 11).collect();
        assert_eq!(
            team_reduce_with(&scheduler, &ints, 0u64, |a, b| a + b, 1024),
            ints.iter().sum::<u64>(),
            "reduce failed for p={threads}, {policy:?}"
        );
        let graph = CsrGraph::grid(120, 90);
        assert_eq!(
            bfs_mixed_with(&scheduler, &graph, 7, 512),
            bfs_sequential(&graph, 7),
            "bfs failed for p={threads}, {policy:?}"
        );
    }
}

/// Matrix multiplication correctness on a scheduler that is reused for many
/// multiplications (team reuse across independent scope invocations).
#[test]
fn repeated_matmul_on_a_reused_scheduler() {
    let scheduler = Scheduler::with_threads(4);
    for round in 0..3 {
        let dim = 70 + round * 30;
        let a = Matrix::from_fn(dim, dim, |i, j| ((i * 13 + j * 5 + round) % 17) as f64 * 0.5);
        let b = Matrix::from_fn(dim, dim, |i, j| ((i * 3 + j * 11 + round) % 19) as f64 * 0.25);
        let reference = matmul_sequential(&a, &b);
        let got = matmul_mixed_with(&scheduler, &a, &b, 1 << 12);
        assert!(
            got.max_abs_diff(&reference) < 1e-9,
            "round {round}: mixed-mode matmul diverged"
        );
    }
}

/// `parallel_sum` on inputs around the team-formation threshold: the result
/// must be identical whether or not a team was built.
#[test]
fn reduction_threshold_boundary_is_seamless() {
    let scheduler = Scheduler::with_threads(2);
    for n in [0usize, 1, 100, 8 * 1024, 8 * 1024 + 1, 64 * 1024] {
        let data: Vec<u64> = (0..n as u64).collect();
        assert_eq!(parallel_sum(&scheduler, &data), data.iter().sum::<u64>(), "n = {n}");
    }
}
